"""The per-rank communicator: point-to-point, collectives, modeled compute.

Every operation is a generator to be driven with ``yield from`` inside a
rank program.  Collectives are explicit message-passing algorithms (binomial
trees, recursive doubling, ring, pairwise exchange) taken from the classic
MPICH implementations, so collective cost scales with log/linear rank count
through the same link model as the paper's point-to-point measurements.
"""

from __future__ import annotations

import enum
import math
from typing import Any

import numpy as np

from repro.des.engine import Event
from repro.simmpi.payload import VirtualPayload, payload_size
from repro.util.errors import ConfigurationError, RankFailureError, SimulationError


class ReduceOp(enum.Enum):
    SUM = "sum"
    MAX = "max"
    MIN = "min"
    PROD = "prod"

    def apply(self, a: Any, b: Any) -> Any:
        """Combine two payloads (virtual payloads stay virtual)."""
        if isinstance(a, VirtualPayload) or isinstance(b, VirtualPayload):
            return a if isinstance(a, VirtualPayload) else b
        if self is ReduceOp.SUM:
            return a + b
        if self is ReduceOp.MAX:
            return np.maximum(a, b)
        if self is ReduceOp.MIN:
            return np.minimum(a, b)
        return a * b


class Request:
    """Handle of a nonblocking operation (MPI_Request).

    ``yield from request.wait()`` suspends until completion and returns the
    received payload (for irecv) or None (for isend);
    ``comm.waitall(requests)`` waits for a batch.
    """

    __slots__ = ("event", "kind")

    def __init__(self, event: Event, kind: str):
        self.event = event
        self.kind = kind

    @property
    def complete(self) -> bool:
        return self.event.triggered

    def wait(self):
        value = yield self.event
        return value if self.kind == "recv" else None


class Comm:
    """One rank's view of a simulated communicator.

    The world communicator has ``group=None``; subcommunicators produced by
    :meth:`split` carry an explicit group (local rank -> world rank) and a
    tag namespace so traffic of different communicators never matches.
    """

    def __init__(
        self,
        world: "repro.simmpi.world.World",  # noqa: F821
        rank: int,
        *,
        group: tuple[int, ...] | None = None,
        comm_id: int = 0,
    ):
        self.world = world
        self.rank = rank
        self.size = len(group) if group is not None else world.mapping.n_ranks
        self._group = group
        self._comm_id = comm_id
        self._phase = "main"
        self._split_seq = 0
        #: per-communicator collective call counter (fast-path matching).
        self._coll_seq = 0

    # ------------------------------------------------------------------ util

    def world_rank(self, local: int) -> int:
        """Translate a rank of this communicator to a world rank."""
        return self._group[local] if self._group is not None else local

    def _tagged(self, tag: int) -> tuple[int, ...]:
        """Namespace a tag with the communicator id.

        Collective-internal tags (negative by convention) additionally
        carry the per-communicator collective instance number: adjacent
        collectives reuse the same tag base, and a small message from
        call N+1 can finish its transfer before a large one from call N —
        without the instance number in the channel key, a rank still
        inside call N would consume it.  The 3-tuple shape also keeps
        internal traffic invisible to user MPI_ANY_TAG receives, which
        match the ``(comm_id, None)`` 2-tuple wildcard only.
        """
        if tag < 0:
            return (self._comm_id, tag, self._coll_seq)
        return (self._comm_id, tag)

    def _get(self, source: int, tag: int | None) -> Event:
        """Posted receive: next message from ``source`` with ``tag``
        (``None`` matches any tag *within this communicator*)."""
        me = self.world_rank(self.rank)
        key = (self._comm_id, None) if tag is None else self._tagged(tag)
        if self.world.recorder is not None:
            self.world.recorder.record_recv(
                me, self.world_rank(source), tag, self._comm_id, self._phase
            )
        return self.world.channel(me).get(source, key)

    def _recv(self, source: int, tag: int | None):
        """Blocking receive of the next matching message.

        With a resilience policy active this is where the MPI-level
        robustness semantics live: the wait is re-armed up to
        ``max_retries`` times with exponential backoff (straggler-aware —
        a slow peer is retried, not declared dead), a timeout against a
        node known to have crashed raises a rank failure (peer-death
        detection), and exhausted retries without failure evidence give up
        as a *suspected* failure.  Every collective receive goes through
        here too, so collectives inherit the same semantics.
        """
        ev = self._get(source, tag)
        state = self.world.resilience
        if state is None or state.policy.recv_timeout is None:
            return (yield ev)
        from repro.des.resources import AnyOf

        engine = self.world.engine
        pol = state.policy
        wait = pol.recv_timeout
        me = self.world_rank(self.rank)
        peer = self.world_rank(source)
        for _attempt in range(pol.max_retries + 1):
            idx, value = yield AnyOf(engine, [ev, engine.timeout(wait)])
            if idx == 0:
                return value
            wait *= pol.backoff
            node = self.world.mapping.node_of(peer)
            if state.is_node_failed(node):
                state.note_detection(me, peer, engine.now)
                raise RankFailureError(
                    f"rank {me}: peer rank {peer} lost (node {node} failed)",
                    rank=me, peer=peer, kind="peer-dead",
                )
        state.note_suspect(me, peer, engine.now)
        raise RankFailureError(
            f"rank {me}: no message from rank {peer} after "
            f"{pol.max_retries + 1} timed waits",
            rank=me, peer=peer, kind="suspected",
        )

    @property
    def now(self) -> float:
        """Current virtual time (seconds)."""
        return self.world.engine.now

    def set_phase(self, phase: str) -> None:
        """Label subsequent operations for the trace (Alya's phase timers)."""
        self._phase = phase

    @property
    def phase(self) -> str:
        return self._phase

    def _check_peer(self, peer: int) -> None:
        if not 0 <= peer < self.size:
            raise ConfigurationError(f"peer {peer} out of range 0..{self.size - 1}")
        if peer == self.rank:
            raise SimulationError(f"rank {self.rank} messaging itself")

    def _rec_collective(
        self, op: str, *, root: int | None = None, nbytes: int | None = None
    ) -> None:
        """Mark a collective entry: bump the per-communicator instance
        counter (namespacing the internal channel keys, see ``_tagged``)
        and log the entry when a verify recorder is attached."""
        self._coll_seq += 1
        rec = self.world.recorder
        if rec is not None:
            rec.record_collective(
                self.world_rank(self.rank),
                op,
                self._comm_id,
                self._phase,
                root=root,
                nbytes=nbytes,
            )

    @staticmethod
    def _rec_size(payload: Any, size: int | None) -> int | None:
        """Declared payload bytes for the recorder (None = undeclared)."""
        if payload is None and size is None:
            return None
        return payload_size(payload, size)

    def _trace(self, start: float, phase_suffix: str) -> None:
        self.world.trace.record(
            start,
            self.now - start,
            actor=f"rank{self.rank}",
            phase=f"{self._phase}:{phase_suffix}",
        )

    # ----------------------------------------------------------- point2point

    def _isend(self, dest: int, payload: Any, tag: int, size: int | None) -> Event:
        """Initiate a send; returns the sender-side completion event.

        Delivery to the destination mailbox is scheduled independently at
        the full transfer time.  Small (eager) messages free the sender
        after the injection overhead; large (rendezvous) messages hold the
        sender for the whole transfer — which also serializes successive
        large sends from one rank, as a real NIC does.
        """
        self._check_peer(dest)
        nbytes = max(1, payload_size(payload, size))
        world = self.world
        if world.recorder is not None:
            world.recorder.record_send(
                self.world_rank(self.rank),
                self.world_rank(dest),
                tag,
                self._comm_id,
                nbytes,
                self._phase,
            )
        src_node = world.mapping.node_of(self.world_rank(self.rank))
        dst_node = world.mapping.node_of(self.world_rank(dest))
        t_transfer = world.network.p2p_time(src_node, dst_node, nbytes) if (
            src_node != dst_node
        ) else world.network.link.p2p_time(nbytes, 0)
        dst_world = self.world_rank(dest)
        tagged = self._tagged(tag)
        rendezvous = nbytes > world.eager_threshold
        if t_transfer == math.inf:
            return self._send_unreachable(dst_world, rendezvous)
        if world.nic_contention and rendezvous and src_node != dst_node:
            # Serialize this node's rendezvous injections through its NIC;
            # the sender completes (and the message arrives) when its turn
            # through the port finishes.
            return world.engine.process(
                self._nic_transfer(src_node, t_transfer, dst_world, tagged,
                                   payload),
                label=f"nic-send:{self.rank}->{dest}",
            )
        world.schedule_delivery(dst_world, self.rank, tagged, payload,
                                t_transfer)
        if not rendezvous:
            return world.engine.timeout(world.send_overhead_s)
        return world.engine.timeout(t_transfer)

    def _send_unreachable(self, dst_world: int, rendezvous: bool) -> Event:
        """Send into a dead link (factor 0.0): the message is lost.

        Eager sends are fire-and-forget — the sender proceeds after its
        injection overhead, as a real NIC would.  A rendezvous send holds
        the sender: with a resilience policy it fails with a rank failure
        after ``send_timeout``; without one the returned event never fires,
        so the blocked sender surfaces as DeadlockError at calendar drain
        (an error, not a hang).
        """
        world = self.world
        if not rendezvous:
            return world.engine.timeout(world.send_overhead_s)
        ev = world.engine.event(
            label=f"send-unreachable:{self.rank}->{dst_world}"
        )
        state = world.resilience
        if state is not None and state.policy.send_timeout is not None:
            me = self.world_rank(self.rank)

            def _expire(_t: Event) -> None:
                state.note_send_failure(me, dst_world, world.engine.now)
                ev.fail(RankFailureError(
                    f"rank {me}: rendezvous send to rank {dst_world} "
                    "timed out (destination unreachable)",
                    rank=me, peer=dst_world, kind="send-unreachable",
                ))

            world.engine.timeout(state.policy.send_timeout).add_callback(_expire)
        return ev

    def _nic_transfer(self, node: int, t_transfer: float, dst_world: int,
                      tagged: tuple, payload: Any):
        # Delivery is committed at NIC-grant time (grant + t_transfer)
        # through the world's delivery seam, so a sharded world sees the
        # message the moment its timing is decided, not after the fact.
        nic = self.world.nic(node)
        yield nic.acquire()
        try:
            self.world.schedule_delivery(dst_world, self.rank, tagged,
                                         payload, t_transfer)
            yield self.world.engine.timeout(t_transfer)
        finally:
            nic.release()

    def send(self, dest: int, payload: Any = None, *, tag: int = 0,
             size: int | None = None):
        """Blocking send (returns when the sender side completes)."""
        start = self.now
        yield self._isend(dest, payload, tag, size)
        self._trace(start, "send")

    def recv(self, source: int, *, tag: int | None = None):
        """Blocking receive; returns the payload."""
        self._check_peer(source)
        start = self.now
        data = yield from self._recv(source, tag)
        self._trace(start, "recv")
        return data

    def sendrecv(
        self,
        dest: int,
        payload: Any = None,
        *,
        source: int | None = None,
        tag: int = 0,
        size: int | None = None,
    ):
        """MPI_Sendrecv: concurrent send and receive (the OSU loop body)."""
        src = dest if source is None else source
        self._check_peer(src)
        start = self.now
        send_done = self._isend(dest, payload, tag, size)
        data = yield from self._recv(src, tag)
        yield send_done
        self._trace(start, "sendrecv")
        return data

    # ------------------------------------------------------------ collectives

    def barrier(self):
        """Dissemination barrier: ceil(log2(p)) rounds of 1-byte exchanges."""
        self._rec_collective("barrier")
        p = self.size
        if p == 1:
            return
        start = self.now
        world = self.world
        if world._use_fastcoll(self):
            yield from world.fastcoll.participate(self, "barrier", None, {})
            self._trace(start, "barrier")
            return
        k = 1
        while k < p:
            dest = (self.rank + k) % p
            src = (self.rank - k) % p
            send_done = self._isend(dest, None, tag=-1 - k, size=1)
            yield from self._recv(src, -1 - k)
            yield send_done
            k <<= 1
        self._trace(start, "barrier")

    def bcast(self, payload: Any = None, *, root: int = 0, size: int | None = None):
        """Binomial-tree broadcast; every rank returns the payload."""
        self._rec_collective("bcast", root=root,
                             nbytes=self._rec_size(payload, size))
        p = self.size
        if p == 1:
            return payload
        start = self.now
        world = self.world
        if world._use_fastcoll(self):
            data = yield from world.fastcoll.participate(
                self, "bcast", payload, {"root": root, "size": size}
            )
            self._trace(start, "bcast")
            return data
        relative = (self.rank - root) % p
        tag = -1000
        mask = 1
        data = payload
        highest = None
        while mask < p:
            if relative & mask:
                src = (relative - mask + root) % p
                data = yield from self._recv(src, tag)
                highest = mask
                break
            mask <<= 1
        # Forward to children: all masks below the bit we received on
        # (the root forwards from the largest power of two below p).
        send_mask = (highest >> 1) if highest is not None else _floor_pow2(p)
        while send_mask > 0:
            dst_rel = relative + send_mask
            if dst_rel < p:
                dst = (dst_rel + root) % p
                yield self._isend(dst, data, tag, size)
            send_mask >>= 1
        self._trace(start, "bcast")
        return data

    def reduce(
        self,
        payload: Any,
        *,
        op: ReduceOp = ReduceOp.SUM,
        root: int = 0,
        size: int | None = None,
    ):
        """Binomial-tree reduction; only ``root`` returns the result."""
        self._rec_collective("reduce", root=root,
                             nbytes=self._rec_size(payload, size))
        p = self.size
        start = self.now
        world = self.world
        if p > 1 and world._use_fastcoll(self):
            result = yield from world.fastcoll.participate(
                self, "reduce", payload, {"op": op, "root": root, "size": size}
            )
            self._trace(start, "reduce")
            return result
        result = payload
        if p > 1:
            relative = (self.rank - root) % p
            tag = -2000
            mask = 1
            while mask < p:
                if relative & mask:
                    dst = (relative - mask + root) % p
                    yield self._isend(dst, result, tag, size)
                    break
                src_rel = relative + mask
                if src_rel < p:
                    src = (src_rel + root) % p
                    partial = yield from self._recv(src, tag)
                    result = op.apply(result, partial)
                mask <<= 1
        self._trace(start, "reduce")
        return result if self.rank == root else None

    def allreduce(
        self, payload: Any, *, op: ReduceOp = ReduceOp.SUM, size: int | None = None
    ):
        """Recursive-doubling allreduce (reduce+bcast for non-powers of two)."""
        self._rec_collective("allreduce",
                             nbytes=self._rec_size(payload, size))
        p = self.size
        if p == 1:
            return payload
        start = self.now
        world = self.world
        if world._use_fastcoll(self):
            result = yield from world.fastcoll.participate(
                self, "allreduce", payload, {"op": op, "size": size}
            )
            self._trace(start, "allreduce")
            return result
        tag = -3000
        result = payload
        if p & (p - 1) == 0:
            mask = 1
            while mask < p:
                partner = self.rank ^ mask
                send_done = self._isend(partner, result, tag - mask, size)
                other = yield from self._recv(partner, tag - mask)
                yield send_done
                result = op.apply(result, other)
                mask <<= 1
        else:
            reduced = yield from self.reduce(result, op=op, root=0, size=size)
            result = yield from self.bcast(
                reduced if self.rank == 0 else None, root=0, size=size
            )
        self._trace(start, "allreduce")
        return result

    def gather(self, payload: Any, *, root: int = 0, size: int | None = None):
        """Binomial-tree gather; root returns the list indexed by rank."""
        self._rec_collective("gather", root=root,
                             nbytes=self._rec_size(payload, size))
        p = self.size
        start = self.now
        collected: dict[int, Any] = {self.rank: payload}
        nbytes = payload_size(payload, size)
        if p > 1:
            relative = (self.rank - root) % p
            tag = -4000
            mask = 1
            while mask < p:
                if relative & mask:
                    dst = (relative - mask + root) % p
                    yield self._isend(
                        dst, collected, tag, size=nbytes * len(collected)
                    )
                    break
                src_rel = relative + mask
                if src_rel < p:
                    src = (src_rel + root) % p
                    part = yield from self._recv(src, tag)
                    collected.update(part)
                mask <<= 1
        self._trace(start, "gather")
        if self.rank == root:
            return [collected[r] for r in range(p)]
        return None

    def allgather(self, payload: Any, *, size: int | None = None):
        """Ring allgather: p-1 steps, each forwarding one block."""
        self._rec_collective("allgather",
                             nbytes=self._rec_size(payload, size))
        p = self.size
        if p == 1:
            return [payload]
        start = self.now
        world = self.world
        if world._use_fastcoll(self):
            blocks = yield from world.fastcoll.participate(
                self, "allgather", payload, {"size": size}
            )
            self._trace(start, "allgather")
            return blocks
        blocks: list[Any] = [None] * p
        blocks[self.rank] = payload
        nbytes = payload_size(payload, size)
        right = (self.rank + 1) % p
        left = (self.rank - 1) % p
        tag = -5000
        carry_idx = self.rank
        for _step in range(p - 1):
            send_done = self._isend(
                right, (carry_idx, blocks[carry_idx]), tag, size=nbytes
            )
            idx, data = yield from self._recv(left, tag)
            yield send_done
            blocks[idx] = data
            carry_idx = idx
        self._trace(start, "allgather")
        return blocks

    def alltoall(self, payloads: list[Any], *, size: int | None = None):
        """Pairwise-exchange alltoall; returns the received list by source.

        ``payloads[d]`` goes to rank d; ``size`` (if given) is the per-block
        byte count.
        """
        p = self.size
        if len(payloads) != p:
            raise ConfigurationError("alltoall needs one payload per rank")
        self._rec_collective(
            "alltoall",
            nbytes=self._rec_size(payloads[0] if payloads else None, size),
        )
        start = self.now
        world = self.world
        if p > 1 and world._use_fastcoll(self):
            received = yield from world.fastcoll.participate(
                self, "alltoall", payloads, {"size": size}
            )
            self._trace(start, "alltoall")
            return received
        received: list[Any] = [None] * p
        received[self.rank] = payloads[self.rank]
        tag = -6000
        for k in range(1, p):
            dst = (self.rank + k) % p
            src = (self.rank - k) % p
            send_done = self._isend(dst, payloads[dst], tag - k, size)
            received[src] = yield from self._recv(src, tag - k)
            yield send_done
        self._trace(start, "alltoall")
        return received

    def scatter(self, payloads: list[Any] | None, *, root: int = 0,
                size: int | None = None):
        """Flat scatter from root; each rank returns its block."""
        self._rec_collective(
            "scatter",
            root=root,
            nbytes=None if size is None else size,
        )
        p = self.size
        start = self.now
        tag = -7000
        if self.rank == root:
            if payloads is None or len(payloads) != p:
                raise ConfigurationError("root must supply one payload per rank")
            for dst in range(p):
                if dst != root:
                    yield self._isend(dst, payloads[dst], tag, size)
            mine = payloads[root]
        else:
            mine = yield from self._recv(root, tag)
        self._trace(start, "scatter")
        return mine

    # ---------------------------------------------------------------- compute

    def compute(
        self,
        seconds: float | None = None,
        *,
        flops: float = 0.0,
        bytes_moved: float = 0.0,
        flops_per_core: float | None = None,
        label: str = "compute",
    ):
        """Advance virtual time for a compute phase.

        Either pass ``seconds`` directly, or pass work (``flops`` and/or
        ``bytes_moved``) plus the sustained per-core rate from the
        toolchain model; the rank's roofline time is charged:
        ``max(flops / rank_rate, bytes / rank_bandwidth)``.
        """
        start = self.now
        if seconds is None:
            if flops < 0 or bytes_moved < 0:
                raise ConfigurationError("work must be non-negative")
            t_flops = 0.0
            if flops > 0:
                if flops_per_core is None or flops_per_core <= 0:
                    raise ConfigurationError(
                        "flops work needs a positive flops_per_core rate"
                    )
                rate = self.world.mapping.rank_compute_rate(
                        self.world_rank(self.rank), flops_per_core)
                t_flops = flops / rate
            t_bytes = 0.0
            if bytes_moved > 0:
                bw = self.world.mapping.rank_memory_bandwidth(
                    self.world_rank(self.rank))
                t_bytes = bytes_moved / bw
            seconds = max(t_flops, t_bytes)
        if seconds < 0:
            raise ConfigurationError("compute time must be non-negative")
        seconds *= self.world.noise_factor(self.world_rank(self.rank))
        seconds *= self.world.compute_slowdown(self.world_rank(self.rank))
        if seconds > 0:
            yield self.world.engine.timeout(seconds)
        self.world.trace.record(
            start, seconds, actor=f"rank{self.rank}", phase=f"{self._phase}:{label}"
        )

    # ------------------------------------------------------------ nonblocking

    def isend(self, dest: int, payload: Any = None, *, tag: int = 0,
              size: int | None = None) -> Request:
        """Nonblocking send; returns a :class:`Request`."""
        return Request(self._isend(dest, payload, tag, size), kind="send")

    def irecv(self, source: int, *, tag: int | None = None) -> Request:
        """Nonblocking receive; ``wait()`` returns the payload."""
        self._check_peer(source)
        return Request(self._get(source, tag), kind="recv")

    def waitall(self, requests: list[Request]):
        """Wait for every request; returns irecv payloads in request order
        (None for sends) — MPI_Waitall."""
        from repro.des.resources import AllOf

        start = self.now
        values = yield AllOf(self.world.engine, [r.event for r in requests])
        self._trace(start, "waitall")
        return [v if r.kind == "recv" else None
                for v, r in zip(values, requests)]

    def waitany(self, requests: list[Request]):
        """Wait for the first completion; returns (index, payload-or-None)
        — MPI_Waitany."""
        from repro.des.resources import AnyOf

        start = self.now
        idx, value = yield AnyOf(self.world.engine,
                                 [r.event for r in requests])
        self._trace(start, "waitall")
        return idx, (value if requests[idx].kind == "recv" else None)

    # ----------------------------------------------------- communicator mgmt

    def split(self, color: int, key: int | None = None):
        """MPI_Comm_split: collectively partition into subcommunicators.

        Every rank of this communicator must call with its ``color``; ranks
        sharing a color form a new communicator ordered by ``key`` (default:
        current rank).  Returns the new :class:`Comm` for this rank.
        """
        self._rec_collective("split")
        self._split_seq += 1
        entries = yield from self.allgather(
            (int(color), self.rank if key is None else int(key), self.rank)
        )
        mine = sorted(
            (k, r) for c, k, r in entries if c == int(color)
        )
        group = tuple(self.world_rank(r) for _k, r in mine)
        new_rank = [r for _k, r in mine].index(self.rank)
        comm_id = self.world.comm_id_for(
            (self._comm_id, self._split_seq, int(color))
        )
        sub = Comm(self.world, new_rank, group=group, comm_id=comm_id)
        sub._phase = self._phase
        return sub

    def dup(self):
        """MPI_Comm_dup: same group, fresh tag namespace (collective)."""
        return (yield from self.split(0, key=self.rank))

    # ------------------------------------------------- additional collectives

    def reduce_scatter_block(self, payloads: list[Any], *,
                             op: ReduceOp = ReduceOp.SUM,
                             size: int | None = None):
        """MPI_Reduce_scatter_block via ring: p-1 steps, each combining and
        forwarding one block; returns this rank's reduced block."""
        p = self.size
        if len(payloads) != p:
            raise ConfigurationError("need one payload block per rank")
        self._rec_collective(
            "reduce_scatter",
            nbytes=self._rec_size(payloads[0] if payloads else None, size),
        )
        if p == 1:
            return payloads[0]
        start = self.now
        tag = -8000
        right = (self.rank + 1) % p
        left = (self.rank - 1) % p
        # Ring schedule: block b starts at rank (b+1) % p and travels
        # rightward, folding one contribution per hop; after p-1 steps it
        # arrives, fully reduced, at rank b.
        acc = [payloads[i] for i in range(p)]
        for k in range(1, p):
            send_idx = (self.rank - k) % p
            recv_idx = (self.rank - k - 1) % p
            send_done = self._isend(right, (send_idx, acc[send_idx]),
                                    tag - k, size)
            idx, part = yield from self._recv(left, tag - k)
            yield send_done
            assert idx == recv_idx
            acc[recv_idx] = op.apply(acc[recv_idx], part)
        self._trace(start, "reduce_scatter")
        return acc[self.rank]

    def scan(self, payload: Any, *, op: ReduceOp = ReduceOp.SUM,
             size: int | None = None, exclusive: bool = False):
        """MPI_Scan / MPI_Exscan via a linear chain.

        Inclusive scan returns op(payload_0..payload_rank); exclusive scan
        returns op(payload_0..payload_{rank-1}) and None on rank 0.
        """
        self._rec_collective("scan", nbytes=self._rec_size(payload, size))
        start = self.now
        tag = -9000
        prefix = None
        if self.rank > 0:
            prefix = yield from self._recv(self.rank - 1, tag)
        inclusive = payload if prefix is None else op.apply(prefix, payload)
        if self.rank + 1 < self.size:
            yield self._isend(self.rank + 1, inclusive, tag, size)
        self._trace(start, "scan")
        return prefix if exclusive else inclusive


def _floor_pow2(n: int) -> int:
    """Largest power of two strictly less than n (n >= 2)."""
    p = 1
    while p << 1 < n:
        p <<= 1
    return p
