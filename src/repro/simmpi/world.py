"""World: wires a rank mapping, a network model and a DES engine together
and runs SPMD rank programs to completion in virtual time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Generator

from repro.des.engine import Engine
from repro.des.resources import Channel, Resource
from repro.des.trace import TraceRecorder
from repro.network.model import NetworkModel, network_for
from repro.simmpi.comm import Comm
from repro.simmpi.mapping import RankMapping
from repro.util.errors import ConfigurationError, DeadlockError
from repro.util.units import KIB

if TYPE_CHECKING:
    from repro.resilience.policy import RankFailure, ResiliencePolicy
    from repro.resilience.schedule import FaultSchedule
    from repro.resilience.state import ResilienceState
    from repro.verify.diagnostics import DiagnosticReport
    from repro.verify.recorder import CommRecorder

RankProgram = Callable[..., Generator[Any, Any, Any]]


@dataclass
class WorldResult:
    """Outcome of one simulated SPMD execution."""

    elapsed: float  # virtual seconds from start to last rank finishing
    rank_results: list[Any]
    trace: TraceRecorder
    #: post-run MPI checker findings (``World.run(..., verify=True)`` only).
    diagnostics: "DiagnosticReport | None" = field(default=None)
    #: dynamic-fault bookkeeping (worlds with a FaultSchedule/policy only):
    #: failure detections, applied transitions, RES diagnostics.
    resilience: "ResilienceState | None" = field(default=None)

    @property
    def rank_failures(self) -> "list[RankFailure]":
        """Ranks that did not complete (crashed node, dead peer, ...)."""
        from repro.resilience.policy import RankFailure

        return [r for r in self.rank_results if isinstance(r, RankFailure)]

    @property
    def completed(self) -> bool:
        """True when every rank ran to normal completion."""
        return not self.rank_failures

    def phase_time(self, phase: str, *, reduction: str = "max") -> float:
        """Aggregate a traced phase over ranks.

        Matches the phase exactly, or any sub-phase under the ``phase:``
        hierarchy separator (``comm.set_phase`` names the phase; operations
        append ``:send``/``:compute``/... suffixes) — the shared
        :func:`repro.des.trace.phase_matches` rule.  Reads the recorder's
        per-(phase, actor) index, so it works identically in ``"full"``
        and ``"aggregate"`` trace modes without scanning records.

        ``max`` reproduces the paper's 'slowest process' reduction used for
        the Alya phase plots; ``mean`` averages; ``sum`` totals.
        """
        per = self.trace.per_actor(phase)
        if not per:
            return 0.0
        values = list(per.values())
        if reduction == "max":
            return max(values)
        if reduction == "mean":
            return sum(values) / len(values)
        if reduction == "sum":
            return sum(values)
        raise ConfigurationError(f"unknown reduction {reduction!r}")


class World:
    """A simulated MPI world over a cluster partition."""

    def __init__(
        self,
        mapping: RankMapping,
        *,
        network: NetworkModel | None = None,
        eager_threshold: int = 32 * KIB,
        send_overhead_s: float = 0.2e-6,
        trace: bool | str = True,
        fast_collectives: bool = False,
        hybrid_collectives: bool = False,
        nic_contention: bool = False,
        compute_noise: float = 0.0,
        noise_seed: int = 0,
        heterogeneity=None,
        fault_schedule: "FaultSchedule | None" = None,
        resilience: "ResiliencePolicy | None" = None,
    ):
        self.mapping = mapping
        self.network = network if network is not None else network_for(
            mapping.cluster, n_nodes=mapping.n_nodes
        )
        if self.network.n_nodes < mapping.n_nodes:
            raise ConfigurationError(
                f"network has {self.network.n_nodes} nodes, mapping needs "
                f"{mapping.n_nodes}"
            )
        self.eager_threshold = eager_threshold
        self.send_overhead_s = send_overhead_s
        self.engine = Engine()
        if isinstance(trace, bool):
            trace_mode = "full" if trace else "off"
        else:
            trace_mode = trace
        self.trace = TraceRecorder(enabled=trace_mode != "off", mode=trace_mode)
        #: substitute closed-form durations for the simulated message
        #: exchange of the big collectives (see :mod:`repro.simmpi.fastcoll`).
        #: ``run(verify=True)`` and NIC-contention worlds always take the
        #: fully simulated path.
        self.fast_collectives = fast_collectives
        #: with a fault schedule attached, allow closed-form collectives
        #: once the fault timeline is exhausted (see ``_use_fastcoll``).
        self.hybrid_collectives = hybrid_collectives
        self._fastcoll = None
        #: per-collective-instance fastcoll decisions of the hybrid gate:
        #: (comm_id, coll_seq) -> [decision, ranks seen].
        self._hybrid_gate: dict[tuple[int, int], list] = {}
        self._channels: dict[int, Channel] = {}
        self._comm_ids: dict[tuple, int] = {}
        #: serialize rendezvous injections per node (real NICs do).
        self.nic_contention = nic_contention
        self._nics: dict[int, Resource] = {}
        #: relative OS-jitter amplitude on compute phases (0 = none).
        if not 0.0 <= compute_noise < 1.0:
            raise ConfigurationError("compute_noise must be in [0, 1)")
        self.compute_noise = compute_noise
        self._noise_seed = noise_seed
        #: per-rank draw counters: rank r's k-th compute phase always sees
        #: the same jitter regardless of how ranks interleave in the
        #: calendar — which is what lets a sharded run (repro.des.shard)
        #: reproduce an unsharded one bit-exactly under noise.
        self._noise_draws: dict[int, int] = {}
        #: optional per-node/core performance deviations
        #: (:class:`repro.bench.variability.HeterogeneityModel`).
        self.heterogeneity = heterogeneity
        #: communication event log for the verify layer (set by
        #: ``run(verify=True)`` or attached explicitly).
        self.recorder: "CommRecorder | None" = None
        #: dynamic fault injection + MPI robustness (see repro.resilience);
        #: created when a schedule or a policy is supplied.
        self.resilience: "ResilienceState | None" = None
        if fault_schedule is not None or resilience is not None:
            from repro.resilience.policy import ResiliencePolicy
            from repro.resilience.schedule import FaultSchedule
            from repro.resilience.state import ResilienceState

            self.resilience = ResilienceState(
                self,
                fault_schedule if fault_schedule is not None else FaultSchedule(),
                resilience if resilience is not None else ResiliencePolicy(),
            )

    def _use_fastcoll(self, comm: "Comm | None" = None) -> bool:
        """Analytic collectives apply only when nothing observes or
        perturbs the full per-message schedule: no verify recorder, no NIC
        contention model, no dynamic fault schedule (fault factors may
        change *during* a collective), and no statically dead link (the
        closed forms cannot represent an unreachable pair).

        With ``hybrid_collectives`` a world *with* a fault schedule takes
        the closed forms for collectives that provably run on a constant
        fabric: once the schedule's last network transition has passed
        (and nothing is unreachable or dead), every later collective is
        exact under the closed forms.  The decision must be identical on
        every rank of one collective instance — ranks straddling the
        boundary would half-simulate, half-shortcut the same collective
        and deadlock — so the *first arriver* decides per (comm_id,
        coll_seq) and the rest follow.
        """
        if (not self.fast_collectives or self.recorder is not None
                or self.nic_contention):
            return False
        state = self.resilience
        if state is None:
            return not self.network.faults.has_unreachable()
        if not self.hybrid_collectives or comm is None:
            return False
        key = (comm._comm_id, comm._coll_seq)
        entry = self._hybrid_gate.get(key)
        if entry is None:
            decision = (
                state.network_quiet(self.engine.now)
                and not state.failed_ranks
                and not self.network.faults.has_unreachable()
            )
            entry = [decision, 0]
            self._hybrid_gate[key] = entry
        entry[1] += 1
        if entry[1] >= comm.size:
            del self._hybrid_gate[key]
        return bool(entry[0])

    @property
    def fastcoll(self):
        """The lazily created fast-collective coordinator."""
        if self._fastcoll is None:
            from repro.simmpi.fastcoll import FastCollectives

            self._fastcoll = FastCollectives(self)
        return self._fastcoll

    def compute_slowdown(self, rank: int) -> float:
        """1/performance-factor of the node hosting ``rank`` (>= 1 slow)."""
        if self.heterogeneity is None:
            return 1.0
        node = self.mapping.node_of(rank)
        first_core = self.mapping.placement_of(rank).cores[0]
        factor = self.heterogeneity.factor(node, first_core)
        if factor <= 0:
            raise ConfigurationError("heterogeneity factor must be positive")
        return 1.0 / factor

    def nic(self, node: int) -> Resource:
        """The injection port of one node (capacity-1 resource)."""
        res = self._nics.get(node)
        if res is None:
            res = Resource(self.engine, capacity=1, label=f"nic{node}")
            self._nics[node] = res
        return res

    def noise_factor(self, rank: int) -> float:
        """Deterministic multiplicative jitter for one compute phase.

        Draw counters are per *rank*: the k-th compute of rank r sees
        jitter ``rng(seed, "noise", r, k)`` independent of how the ranks
        happen to interleave on the calendar, so any execution that
        preserves each rank's own op order (sharded included) reproduces
        the same perturbations.
        """
        if self.compute_noise == 0.0:
            return 1.0
        from repro.util.rng import make_rng

        draw = self._noise_draws.get(rank, 0) + 1
        self._noise_draws[rank] = draw
        rng = make_rng(self._noise_seed, "noise", rank, draw)
        return 1.0 + self.compute_noise * float(rng.random())

    def comm_id_for(self, key: tuple) -> int:
        """Deterministically allocate a communicator id for a split key.

        All ranks performing the same logical split request the same key and
        therefore receive the same id, regardless of request order.
        """
        if key not in self._comm_ids:
            self._comm_ids[key] = len(self._comm_ids) + 1
        return self._comm_ids[key]

    def channel(self, rank: int) -> Channel:
        ch = self._channels.get(rank)
        if ch is None:
            ch = Channel(self.engine, label=f"rank{rank}")
            self._channels[rank] = ch
        return ch

    def comm(self, rank: int) -> Comm:
        return Comm(self, rank)

    def schedule_delivery(
        self,
        dst_rank: int,
        src_comm_rank: int,
        key: tuple,
        payload: Any,
        t_transfer: float,
    ) -> None:
        """Schedule a message to land in ``dst_rank``'s mailbox after
        ``t_transfer`` seconds.

        This is the single seam through which every simulated message
        reaches its destination (``Comm._isend`` and the NIC-contention
        path both call it) — and therefore the one method a sharded
        sub-world (:class:`repro.des.shard.subworld.ShardWorld`) overrides
        to divert cross-shard deliveries into its outbox *at send time*,
        when the delivery is still guaranteed to be at least one lookahead
        in the future.  ``src_comm_rank`` is the sender's rank *within the
        sending communicator* (channel matching is by communicator-local
        source).
        """
        delivery = self.engine.timeout(t_transfer)
        delivery.add_callback(
            lambda _ev: self.channel(dst_rank).put(src_comm_rank, key, payload)
        )

    def run(
        self,
        program: RankProgram,
        *args: Any,
        verify: bool = False,
        **kwargs: Any,
    ) -> WorldResult:
        """Run ``program(comm, *args, **kwargs)`` on every rank.

        The program is a generator function; per-rank return values are
        collected in rank order.  Raises DeadlockError on mismatched
        communication.

        With ``verify=True`` every communication operation is logged and the
        MPI checker runs over the log: a completed run returns its findings
        in ``WorldResult.diagnostics`` (unmatched messages, collective
        divergence, ...), and a deadlock raises a :class:`DeadlockError`
        carrying the wait-for-graph postmortem — which ranks block on which
        operations — instead of the engine's bare message.

        Worlds with a fault schedule or resilience policy attached run the
        fault injector alongside the ranks; a rank that dies (node crash,
        timeout against a dead peer) yields a
        :class:`~repro.resilience.RankFailure` in ``rank_results`` rather
        than hanging the run, and ``WorldResult.resilience`` carries the
        detection bookkeeping and RES diagnostics.
        """
        if verify and self.recorder is None:
            from repro.verify.recorder import CommRecorder

            self.recorder = CommRecorder()
        n = self.mapping.n_ranks
        state = self.resilience
        if state is not None:
            state.start_injector()
        processes = []
        for rank in range(n):
            comm = self.comm(rank)
            gen = program(comm, *args, **kwargs)
            if state is not None:
                gen = state.supervise(rank, gen)
            processes.append(self.engine.process(gen, label=f"rank{rank}"))
        if state is not None:
            state.attach_processes(processes)
        try:
            elapsed = self.engine.run()
        except DeadlockError as exc:
            if self.recorder is None:
                raise
            from repro.verify.deadlock import diagnose_deadlock

            report = diagnose_deadlock(self.recorder)
            err = DeadlockError(f"{exc}\n{report.render()}")
            err.diagnostics = report
            raise err from exc
        if state is not None:
            elapsed = state.elapsed(fallback=elapsed)
        result = WorldResult(
            elapsed=elapsed,
            rank_results=[p.value for p in processes],
            trace=self.trace,
            resilience=state,
        )
        if self.recorder is not None:
            from repro.verify.mpi_rules import check_recorded

            result.diagnostics = check_recorded(
                self.recorder, title="MPI message check"
            )
        return result
