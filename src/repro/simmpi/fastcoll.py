"""Analytic fast paths for the simulated collectives.

The DES-backed collectives in :mod:`repro.simmpi.comm` execute every
constituent message of the MPICH-style algorithms (binomial trees,
recursive doubling, ring, pairwise exchange) as individual engine events —
exact, but O(P log P) host work per collective.  This module computes the
*same* per-rank completion times with closed-form recurrences over the
identical cost model (LogGP link timing through the rank mapping, eager
``send_overhead_s`` vs rendezvous full-transfer sender occupancy), so a
collective costs one rendezvous and O(P log P) float arithmetic instead of
thousands of heap operations and generator resumptions.

Semantics
---------
* Every rank of a communicator registers at its arrival time and suspends;
  when the last rank arrives, per-rank completion times and return values
  are computed and each rank is resumed at its completion time.
* Return values replicate the DES combine order (``op.apply`` fold order,
  block placement), so results — including floating-point rounding — match
  the simulated path.
* A rank that would complete *before* the last rank arrives (a broadcast
  root with eager sends, say) is resumed at the last arrival instead: the
  event calendar cannot schedule into the past.  For bulk-synchronous
  programs arrivals coincide and the recurrences reproduce the simulated
  schedule exactly; under heavy skew the elapsed times stay within the
  cross-validation tolerance enforced by the test suite.

The fast path is *opt-in* (``World(fast_collectives=True)``) and
automatically disabled when the full per-message schedule is observable:
``run(verify=True)`` (a :class:`~repro.verify.recorder.CommRecorder` is
attached) or NIC-contention modeling.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator

from repro.des.engine import Event
from repro.simmpi.payload import payload_size
from repro.util.errors import SimulationError

if TYPE_CHECKING:
    from repro.simmpi.comm import Comm, ReduceOp
    from repro.simmpi.world import World

#: collectives with an analytic fast path.
FAST_OPS = frozenset(
    {"allreduce", "bcast", "reduce", "allgather", "alltoall", "barrier"}
)


class FastCollectives:
    """Per-world coordinator matching collective calls across ranks."""

    def __init__(self, world: "World"):
        self.world = world
        #: (comm_id, per-comm call sequence, op) -> {local rank: entry}
        self._pending: dict[tuple[int, int, str], dict[int, tuple]] = {}

    # -- rendezvous ---------------------------------------------------------

    def participate(
        self, comm: "Comm", op_name: str, payload: Any, kwargs: dict
    ) -> Generator[Any, Any, Any]:
        """Register one rank's collective call; resumes at completion time."""
        engine = self.world.engine
        comm._coll_seq += 1
        key = (comm._comm_id, comm._coll_seq, op_name)
        entry = self._pending.get(key)
        if entry is None:
            entry = self._pending[key] = {}
        if comm.rank in entry:
            raise SimulationError(
                f"rank {comm.rank} entered {op_name} twice (seq {key[1]})"
            )
        ev = Event(engine, label=f"fastcoll:{op_name}")
        entry[comm.rank] = (engine._now, payload, ev, comm, kwargs)
        if len(entry) == comm.size:
            del self._pending[key]
            self._finish(op_name, entry)
        value = yield ev
        return value

    def _finish(self, op_name: str, entry: dict[int, tuple]) -> None:
        p = len(entry)
        arrival = [entry[r][0] for r in range(p)]
        payloads = [entry[r][1] for r in range(p)]
        comm = entry[0][3]
        kwargs = entry[0][4]
        solver: Callable = getattr(self, "_solve_" + op_name)
        complete, values = solver(comm, arrival, payloads, **kwargs)
        engine = self.world.engine
        now = engine._now
        for r in range(p):
            ev = entry[r][2]
            ev._triggered = True
            ev._value = values[r]
            at = complete[r]
            engine._schedule(at if at > now else now, ev)

    # -- cost model (mirrors Comm._isend) -----------------------------------

    def _cost_tables(self, comm: "Comm"):
        """Per-local-rank node indices and the transfer/sender-cost closures."""
        world = self.world
        mapping = world.mapping
        network = world.network
        link = network.link
        eager = world.eager_threshold
        overhead = world.send_overhead_s
        nodes = [mapping.node_of(comm.world_rank(r)) for r in range(comm.size)]

        def transfer(src: int, dst: int, nbytes: int) -> float:
            if nodes[src] != nodes[dst]:
                return network.p2p_time(nodes[src], nodes[dst], nbytes)
            return link.p2p_time(nbytes, 0)

        def send_done(src: int, dst: int, nbytes: int) -> float:
            if nbytes > eager:
                return transfer(src, dst, nbytes)
            return overhead

        return transfer, send_done

    @staticmethod
    def _nbytes(payload: Any, size: int | None) -> int:
        return max(1, payload_size(payload, size))

    # -- per-collective solvers ---------------------------------------------
    # Each returns (per-rank completion times, per-rank return values) and
    # replicates the corresponding DES algorithm in repro.simmpi.comm.

    def _solve_barrier(self, comm, arrival, payloads):
        transfer, send_done = self._cost_tables(comm)
        p = comm.size
        t = list(arrival)
        k = 1
        while k < p:
            t = [
                max(
                    t[(r - k) % p] + transfer((r - k) % p, r, 1),
                    t[r] + send_done(r, (r + k) % p, 1),
                )
                for r in range(p)
            ]
            k <<= 1
        return t, [None] * p

    def _solve_allreduce(self, comm, arrival, payloads, *, op, size=None):
        p = comm.size
        if p & (p - 1) == 0:
            transfer, send_done = self._cost_tables(comm)
            sizes = [self._nbytes(payloads[r], size) for r in range(p)]
            t = list(arrival)
            values = list(payloads)
            mask = 1
            while mask < p:
                t = [
                    max(
                        t[r ^ mask] + transfer(r ^ mask, r, sizes[r ^ mask]),
                        t[r] + send_done(r, r ^ mask, sizes[r]),
                    )
                    for r in range(p)
                ]
                values = [op.apply(values[r], values[r ^ mask]) for r in range(p)]
                mask <<= 1
            return t, values
        # Non-power-of-two: reduce to rank 0, then broadcast (as the DES does).
        t, reduced = self._solve_reduce(comm, arrival, payloads, op=op, root=0,
                                        size=size)
        bcast_payloads = [reduced[0] if r == 0 else None for r in range(p)]
        return self._solve_bcast(comm, t, bcast_payloads, root=0, size=size)

    def _solve_bcast(self, comm, arrival, payloads, *, root=0, size=None):
        transfer, send_done = self._cost_tables(comm)
        p = comm.size
        data = payloads[root]
        nbytes = self._nbytes(data, size)
        # Work in relative ranks: rel = (rank - root) % p.
        ready = [0.0] * p
        complete = [0.0] * p
        for rel in range(p):
            rank = (rel + root) % p
            if rel == 0:
                ready[rel] = arrival[rank]
            # Forward to children below the received bit (the root forwards
            # from the largest power of two below p), sequentially.
            highest = rel & -rel  # lowest set bit = the mask received on
            if rel == 0:
                send_mask = _floor_pow2(p)
            else:
                send_mask = highest >> 1
            cur = ready[rel]
            while send_mask > 0:
                child_rel = rel + send_mask
                if child_rel < p:
                    child = (child_rel + root) % p
                    delivery = cur + transfer(rank, child, nbytes)
                    ready[child_rel] = max(arrival[child], delivery)
                    cur += send_done(rank, child, nbytes)
                send_mask >>= 1
            complete[rel] = cur
        out_t = [0.0] * p
        for rel in range(p):
            out_t[(rel + root) % p] = complete[rel]
        return out_t, [data] * p

    def _solve_reduce(self, comm, arrival, payloads, *, op, root=0, size=None):
        transfer, send_done = self._cost_tables(comm)
        p = comm.size
        sizes = [self._nbytes(payloads[r], size) for r in range(p)]
        complete_rel = [0.0] * p
        delivery = [0.0] * p  # per relative rank: when its upward send lands
        value_rel: list[Any] = [None] * p
        for rel in range(p - 1, -1, -1):
            rank = (rel + root) % p
            cur = arrival[rank]
            result = payloads[rank]
            mask = 1
            sent = False
            while mask < p:
                if rel & mask:
                    parent_rel = rel - mask
                    parent = (parent_rel + root) % p
                    delivery[rel] = cur + transfer(rank, parent, sizes[rank])
                    complete_rel[rel] = cur + send_done(rank, parent, sizes[rank])
                    sent = True
                    break
                child_rel = rel + mask
                if child_rel < p:
                    # Children have larger relative ranks: already solved.
                    cur = max(cur, delivery[child_rel])
                    result = op.apply(result, value_rel[child_rel])
                mask <<= 1
            value_rel[rel] = result
            if not sent:
                complete_rel[rel] = cur
        out_t = [0.0] * p
        for rel in range(p):
            out_t[(rel + root) % p] = complete_rel[rel]
        values = [value_rel[0] if r == root else None for r in range(p)]
        return out_t, values

    def _solve_allgather(self, comm, arrival, payloads, *, size=None):
        transfer, send_done = self._cost_tables(comm)
        p = comm.size
        sizes = [self._nbytes(payloads[r], size) for r in range(p)]
        t = list(arrival)
        for _step in range(p - 1):
            t = [
                max(
                    t[(r - 1) % p] + transfer((r - 1) % p, r, sizes[(r - 1) % p]),
                    t[r] + send_done(r, (r + 1) % p, sizes[r]),
                )
                for r in range(p)
            ]
        blocks = list(payloads)
        return t, [list(blocks) for _ in range(p)]

    def _solve_alltoall(self, comm, arrival, payloads, *, size=None):
        transfer, send_done = self._cost_tables(comm)
        p = comm.size
        t = list(arrival)
        for k in range(1, p):
            t = [
                max(
                    t[(r - k) % p]
                    + transfer(
                        (r - k) % p, r,
                        self._nbytes(payloads[(r - k) % p][r], size),
                    ),
                    t[r]
                    + send_done(
                        r, (r + k) % p,
                        self._nbytes(payloads[r][(r + k) % p], size),
                    ),
                )
                for r in range(p)
            ]
        values = [[payloads[src][r] for src in range(p)] for r in range(p)]
        return t, values


def _floor_pow2(n: int) -> int:
    """Largest power of two strictly less than n (n >= 2)."""
    p = 1
    while p << 1 < n:
        p <<= 1
    return p
