"""Execution tracing for simulated runs.

A :class:`TraceRecorder` collects (time, actor, phase, duration, detail)
records; the analysis layer aggregates them into per-phase timings — this is
how the Alya Assembly/Solver split (Figs. 9-10) is measured, mirroring the
paper's use of the application's internal timers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator


@dataclass(frozen=True)
class TraceRecord:
    """One traced interval of one actor (rank, thread, node)."""

    start: float
    duration: float
    actor: str
    phase: str
    detail: str = ""

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass
class TraceRecorder:
    """Append-only trace with per-phase aggregation helpers."""

    enabled: bool = True
    records: list[TraceRecord] = field(default_factory=list)

    def record(
        self, start: float, duration: float, actor: str, phase: str, detail: str = ""
    ) -> None:
        if self.enabled:
            self.records.append(TraceRecord(start, duration, actor, phase, detail))

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def phases(self) -> set[str]:
        return {r.phase for r in self.records}

    def total_time(self, phase: str, actor: str | None = None) -> float:
        """Summed duration of a phase (optionally for one actor)."""
        return sum(
            r.duration
            for r in self.records
            if r.phase == phase and (actor is None or r.actor == actor)
        )

    def per_actor(self, phase: str) -> dict[str, float]:
        """Total phase time keyed by actor."""
        out: dict[str, float] = {}
        for r in self.records:
            if r.phase == phase:
                out[r.actor] = out.get(r.actor, 0.0) + r.duration
        return out

    def slowest_actor(self, phase: str) -> tuple[str, float]:
        """The actor with the largest total time in a phase.

        The paper reports 'the elapsed time of the slowest process' for the
        Alya phase plots; this is that reduction.
        """
        per = self.per_actor(phase)
        if not per:
            raise KeyError(f"no records for phase {phase!r}")
        actor = max(per, key=per.__getitem__)
        return actor, per[actor]
