"""Execution tracing for simulated runs.

A :class:`TraceRecorder` collects (time, actor, phase, duration, detail)
records; the analysis layer aggregates them into per-phase timings — this is
how the Alya Assembly/Solver split (Figs. 9-10) is measured, mirroring the
paper's use of the application's internal timers.

Aggregation is indexed: per-(phase, actor) totals accumulate at
:meth:`TraceRecorder.record` time, so ``total_time``/``per_actor``/
``slowest_actor`` never scan the record list.  Three modes trade retention
for speed:

* ``"full"`` (default) — keep every :class:`TraceRecord` and the totals;
* ``"aggregate"`` — keep only the totals (big campaigns, no per-record
  retention; iteration and ``len()`` see an empty record list);
* ``"off"`` — record nothing.

Phase names form a hierarchy under the ``:`` separator (``comm.set_phase``
names the phase, operations append ``:send``/``:compute``/... suffixes);
:func:`phase_matches` is the one matching rule every aggregation helper
shares, so e.g. querying ``solver`` includes ``solver:allreduce`` but never
the distinct phase ``solver_setup``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.util.errors import ConfigurationError

#: Separator of the phase hierarchy (``phase:subphase``).
PHASE_SEP = ":"

_MODES = ("full", "aggregate", "off")


def phase_matches(record_phase: str, query: str) -> bool:
    """True when ``record_phase`` is ``query`` or a sub-phase under it.

    Exact-or-``phase:``-prefix semantics: a plain prefix match would
    conflate e.g. ``solver`` with ``solver_setup``.
    """
    return record_phase == query or record_phase.startswith(query + PHASE_SEP)


@dataclass(frozen=True)
class TraceRecord:
    """One traced interval of one actor (rank, thread, node)."""

    start: float
    duration: float
    actor: str
    phase: str
    detail: str = ""

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass
class TraceRecorder:
    """Append-only trace with indexed per-phase aggregation helpers."""

    enabled: bool = True
    records: list[TraceRecord] = field(default_factory=list)
    #: ``"full"`` | ``"aggregate"`` | ``"off"`` (see module docstring).
    mode: str = "full"
    #: (phase, actor) -> summed duration, maintained at record() time.
    _totals: dict[tuple[str, str], float] = field(
        default_factory=dict, init=False, repr=False
    )

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ConfigurationError(
                f"unknown trace mode {self.mode!r}; choose from {_MODES}"
            )
        if not self.enabled:
            self.mode = "off"

    def record(
        self, start: float, duration: float, actor: str, phase: str, detail: str = ""
    ) -> None:
        mode = self.mode
        if mode == "off" or not self.enabled:
            return
        key = (phase, actor)
        totals = self._totals
        totals[key] = totals.get(key, 0.0) + duration
        if mode == "full":
            self.records.append(TraceRecord(start, duration, actor, phase, detail))

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def phases(self) -> set[str]:
        return {phase for phase, _actor in self._totals}

    def totals(self) -> dict[tuple[str, str], float]:
        """A copy of the per-(phase, actor) duration index.

        This is the stable aggregate surface the golden-trace regression
        harness snapshots: identical simulations must reproduce it exactly
        (same keys, bit-identical floats) in any trace mode but ``"off"``.
        """
        return dict(self._totals)

    def total_time(self, phase: str, actor: str | None = None) -> float:
        """Summed duration of a phase and its sub-phases (optionally for
        one actor)."""
        return sum(
            duration
            for (p, a), duration in self._totals.items()
            if phase_matches(p, phase) and (actor is None or a == actor)
        )

    def per_actor(self, phase: str) -> dict[str, float]:
        """Total phase (and sub-phase) time keyed by actor."""
        out: dict[str, float] = {}
        for (p, a), duration in self._totals.items():
            if phase_matches(p, phase):
                out[a] = out.get(a, 0.0) + duration
        return out

    def slowest_actor(self, phase: str) -> tuple[str, float]:
        """The actor with the largest total time in a phase.

        The paper reports 'the elapsed time of the slowest process' for the
        Alya phase plots; this is that reduction.
        """
        per = self.per_actor(phase)
        if not per:
            raise KeyError(f"no records for phase {phase!r}")
        actor = max(per, key=per.__getitem__)
        return actor, per[actor]
