"""Shared resources for DES processes: semaphores, rendezvous channels,
and event conjunction.

``Channel`` implements the matching semantics simulated MPI needs: a FIFO of
pending messages per (source, tag) with blocking receive.  ``Resource`` is a
counting semaphore used to serialize access to modeled hardware (e.g. a NIC
injection port).  ``AllOf`` waits for a set of events (MPI_Waitall).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable
from typing import Any

from repro.des.engine import Engine, Event
from repro.util.errors import SimulationError


class Resource:
    """Counting semaphore with FIFO fairness.

    Usage from a process::

        yield resource.acquire()
        ...critical section...
        resource.release()
    """

    def __init__(self, engine: Engine, capacity: int = 1, label: str = "") -> None:
        if capacity < 1:
            raise SimulationError("resource capacity must be >= 1")
        self.engine = engine
        self.capacity = capacity
        self.label = label
        self._in_use = 0
        self._waiters: deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Event:
        ev = self.engine.event(label=f"acquire:{self.label}")
        if self._in_use < self.capacity:
            self._in_use += 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.label!r}")
        if self._waiters:
            # Hand the slot to the next waiter; in_use stays constant.
            self._waiters.popleft().succeed()
        else:
            self._in_use -= 1


class Channel:
    """A rendezvous message channel keyed by (source, tag).

    ``put`` never blocks (buffered-send semantics; transfer time is charged
    by the network model before ``put`` is called).  ``get`` blocks until a
    matching message exists.  Wildcards: tag ``None`` matches any tag from
    the given source, and a *namespaced* wildcard ``(ns, None)`` matches any
    tag of the form ``(ns, x)`` — how simulated MPI scopes MPI_ANY_TAG to
    one communicator.  Source matching is exact because simulated MPI
    resolves MPI_ANY_SOURCE at a higher level.
    """

    _ANY = object()

    def __init__(self, engine: Engine, label: str = "") -> None:
        self.engine = engine
        self.label = label
        self._mailbox: dict[tuple[Any, Any], deque[Any]] = {}
        self._getters: dict[tuple[Any, Any], deque[Event]] = {}

    def _key(self, source: Any, tag: Any) -> tuple[Any, Any]:
        return (source, self._ANY if tag is None else tag)

    @staticmethod
    def _is_ns_wildcard(tag: Any) -> bool:
        return isinstance(tag, tuple) and len(tag) == 2 and tag[1] is None

    def put(self, source: Any, tag: Any, payload: Any) -> None:
        """Deliver a message; wakes one matching getter if present."""
        keys = [(source, tag)]
        if isinstance(tag, tuple) and len(tag) == 2:
            keys.append((source, (tag[0], None)))  # namespaced wildcard
        keys.append((source, self._ANY))
        for key in keys:
            waiters = self._getters.get(key)
            if waiters:
                waiters.popleft().succeed(payload)
                return
        self._mailbox.setdefault((source, tag), deque()).append(payload)

    def _match_stored(self, source: Any, tag: Any) -> tuple[Any, Any] | None:
        """Find a mailbox key matching (source, tag) including wildcards."""
        if tag is None:
            for key in self._mailbox:
                if key[0] == source and self._mailbox[key]:
                    return key
            return None
        if self._is_ns_wildcard(tag):
            ns = tag[0]
            for key in self._mailbox:
                if (key[0] == source and isinstance(key[1], tuple)
                        and len(key[1]) == 2 and key[1][0] == ns
                        and self._mailbox[key]):
                    return key
            return None
        key = (source, tag)
        return key if self._mailbox.get(key) else None

    def get(self, source: Any, tag: Any = None) -> Event:
        """Event that fires with the payload of the next matching message."""
        ev = self.engine.event(label=f"recv:{self.label}")
        key = self._match_stored(source, tag)
        if key is not None:
            ev.succeed(self._mailbox[key].popleft())
            if not self._mailbox[key]:
                del self._mailbox[key]
            return ev
        self._getters.setdefault(self._key(source, tag), deque()).append(ev)
        return ev

    @property
    def pending(self) -> int:
        return sum(len(q) for q in self._mailbox.values())


class AnyOf(Event):
    """Fires as soon as any constituent event fires (MPI_Waitany).

    The value is ``(index, value)`` of the first event to complete;
    simultaneous completions resolve to the lowest index.
    """

    __slots__ = ("_events",)

    def __init__(self, engine: Engine, events: list[Event], label: str = "any_of") -> None:
        super().__init__(engine, label=label)
        self._events = list(events)
        if not self._events:
            raise SimulationError("AnyOf needs at least one event")
        fired = False
        for idx, ev in enumerate(self._events):
            if ev._resolved and not fired:
                self.succeed((idx, ev._value))
                fired = True
        if not fired:
            for idx, ev in enumerate(self._events):
                ev.add_callback(self._make_callback(idx))

    def _make_callback(self, idx: int) -> Callable[[Event], None]:
        def on_child(child: Event) -> None:
            if self.triggered:
                return
            if not child._ok:
                self.fail(child._value)
            else:
                self.succeed((idx, child._value))

        return on_child


class AllOf(Event):
    """Fires when all constituent events have fired (MPI_Waitall).

    The value is the list of constituent values in constructor order.
    """

    __slots__ = ("_events", "_remaining")

    def __init__(self, engine: Engine, events: list[Event], label: str = "all_of") -> None:
        super().__init__(engine, label=label)
        self._events = list(events)
        self._remaining = 0
        for ev in self._events:
            if not ev._resolved:
                self._remaining += 1
                ev.add_callback(self._on_child)
        if self._remaining == 0:
            self.succeed([ev._value for ev in self._events])

    def _on_child(self, child: Event) -> None:
        if not child._ok:
            if not self.triggered:
                self.fail(child._value)
            return
        self._remaining -= 1
        if self._remaining == 0 and not self.triggered:
            self.succeed([ev._value for ev in self._events])
