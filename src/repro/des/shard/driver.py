"""The windowed conservative driver: run shard sub-worlds in lockstep
lookahead windows and merge their results deterministically.

Execution model (classic conservative / YAWNS synchronization):

1. compute the global floor ``t0`` — the earliest pending calendar entry
   of any shard, or the earliest in-flight cross-shard message;
2. let every shard process its events in ``[t0, t0 + lookahead]``; sends
   to remote ranks land in the shard's outbox stamped with their virtual
   delivery time, which the lookahead proof guarantees to be ``>= t0 +
   lookahead`` for sends initiated inside the window;
3. harvest all outboxes, sort by the canonical ``(time, src_shard,
   seq)`` key, and inject into the destination shards;
4. repeat until every calendar is drained and nothing is in flight.

Every window consumes at least one calendar entry somewhere (the floor
event itself), so the loop terminates whenever the unsharded simulation
would.  The canonical sort in step 3 makes each engine's injection
sequence — and therefore its event calendar — independent of worker
scheduling: the merged result is byte-identical for any shard count and
any worker count.

Workers are persistent processes (:class:`repro.harness.procpool.
PersistentPool`): each owns a contiguous block of shards, rebuilds them
locally from the picklable :class:`ShardedSpec` (the lowered rank
program is a closure and cannot cross a pipe), and exchanges only
window-boundary messages with the driver.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field, replace
from time import perf_counter
from typing import TYPE_CHECKING, Any

from repro.des.shard.partition import (
    ShardPlan,
    cross_shard_rank_pairs,
    lookahead,
)
from repro.des.shard.subworld import CrossMsg, ShardResult, ShardWorld
from repro.des.trace import TraceRecorder
from repro.ir.lower import lower
from repro.network.model import network_for
from repro.simmpi.world import WorldResult
from repro.util.errors import ConfigurationError, DeadlockError

if TYPE_CHECKING:
    from repro.ir.program import Program
    from repro.resilience.policy import RankFailure
    from repro.resilience.state import Detection
    from repro.verify.recorder import CommRecorder
    from repro.simmpi.mapping import RankMapping
    from repro.toolchain.compiler import Binary
    from repro.verify.diagnostics import DiagnosticReport

_INF = float("inf")


@dataclass
class ShardedSpec:
    """Everything a worker needs to rebuild its shards.

    Must stay picklable end to end: the IR :class:`Program`, the frozen
    :class:`RankMapping`, and plain world kwargs all are; the *lowered*
    rank program is not, so lowering happens inside each host.
    ``world_kwargs`` is deep-copied per shard — each sub-world must own
    its network fault state, heterogeneity model, and noise amplitude,
    or one shard's injector would mutate another's timing mid-window.
    """

    program: "Program"
    mapping: "RankMapping"
    n_shards: int
    granularity: str = "node"
    binary: "Binary | None" = None
    verify: bool = False
    world_kwargs: dict[str, Any] = field(default_factory=dict)


@dataclass
class ShardStats:
    """Driver-side accounting of one sharded run."""

    n_shards: int
    granularity: str
    lookahead_s: float
    windows: int
    cross_messages: int
    events: int
    shard_events: dict[int, int]
    #: summed per-window wall seconds per shard (worker-side clock).
    shard_wall_s: dict[int, float]
    workers: int
    #: refined cross-shard channel count, or None when the symbolic
    #: inventory was unavailable and the all-pairs bound was used.
    inventory_pairs: int | None

    def to_dict(self) -> dict[str, Any]:
        return {
            "n_shards": self.n_shards,
            "granularity": self.granularity,
            "lookahead_s": self.lookahead_s,
            "windows": self.windows,
            "cross_messages": self.cross_messages,
            "events": self.events,
            "shard_events": dict(self.shard_events),
            "shard_wall_s": dict(self.shard_wall_s),
            "workers": self.workers,
            "inventory_pairs": self.inventory_pairs,
        }


class MergedResilience:
    """Union of the per-shard resilience bookkeeping.

    Duck-types the result surface of
    :class:`~repro.resilience.state.ResilienceState` (``failed_nodes``,
    ``failed_ranks``, ``finish_times``, ``detections``, ``suspects``,
    ``report``) so campaign summaries and tests read a merged
    ``WorldResult.resilience`` exactly like an unsharded one.
    """

    def __init__(self) -> None:
        from repro.verify.diagnostics import DiagnosticReport

        self.failed_nodes: set[int] = set()
        self.failed_ranks: "dict[int, RankFailure]" = {}
        self.finish_times: dict[int, float] = {}
        self.detections: "list[Detection]" = []
        self.suspects: "list[Detection]" = []
        self.report: "DiagnosticReport" = DiagnosticReport(
            title="dynamic faults"
        )


# -- the per-worker shard host ----------------------------------------------


class _ShardHost:
    """Owns a set of shard sub-worlds inside one process (the driver's
    for the sequential mode, a persistent worker's otherwise)."""

    def __init__(self, spec: ShardedSpec, shard_ids: list[int]) -> None:
        self.spec = spec
        self.plan = ShardPlan.build(
            spec.mapping, spec.n_shards, granularity=spec.granularity
        )
        self._rank_program = lower(spec.program, spec.mapping, spec.binary)
        self.shards: dict[int, ShardWorld] = {}
        for s in shard_ids:
            kwargs = copy.deepcopy(spec.world_kwargs)
            self.shards[s] = ShardWorld(spec.mapping, self.plan, s, **kwargs)

    def handle(self, msg: tuple) -> Any:
        op = msg[0]
        if op == "start":
            return self._start()
        if op == "step":
            return self._step(msg[1], msg[2])
        if op == "finish":
            return self._finish()
        raise ConfigurationError(f"unknown shard-host op {op!r}")

    def _start(self) -> dict[int, tuple[float, int]]:
        out = {}
        for s, world in self.shards.items():
            world.start(self._rank_program, verify=self.spec.verify)
            out[s] = (world.next_time(), world.live)
        return out

    def _step(
        self, t_end: float, inject: dict[int, list[CrossMsg]]
    ) -> dict[int, tuple[float, int, list[CrossMsg], float]]:
        out = {}
        for s, world in self.shards.items():
            t0 = perf_counter()
            for m in inject.get(s, ()):
                world.inject(m)
            world.run_window(t_end)
            out[s] = (
                world.next_time(),
                world.live,
                world.drain_outbox(),
                perf_counter() - t0,
            )
        return out

    def _finish(self) -> dict[int, ShardResult]:
        return {s: world.finish() for s, world in self.shards.items()}


def _make_host(init: tuple[ShardedSpec, list[int]]) -> _ShardHost:
    """Module-level factory so the persistent pool can pickle it."""
    return _ShardHost(*init)


class _LocalGroup:
    """Sequential in-process execution of every shard."""

    def __init__(self, spec: ShardedSpec, shard_sets: list[list[int]]) -> None:
        self.hosts = [_ShardHost(spec, ids) for ids in shard_sets]

    def call_all(self, msgs: list[tuple]) -> list[Any]:
        return [h.handle(m) for h, m in zip(self.hosts, msgs)]

    def close(self) -> None:
        pass


class _PoolGroup:
    """Shard execution over persistent worker processes."""

    def __init__(self, spec: ShardedSpec, shard_sets: list[list[int]]) -> None:
        from repro.harness.procpool import PersistentPool

        self.pool = PersistentPool(
            _make_host, [(spec, ids) for ids in shard_sets]
        )

    def call_all(self, msgs: list[tuple]) -> list[Any]:
        return self.pool.call_all(msgs)

    def close(self) -> None:
        self.pool.close()


def _shard_sets(n_shards: int, workers: int) -> list[list[int]]:
    """Contiguous balanced shard blocks, one per worker slot."""
    n_groups = max(1, min(workers, n_shards))
    q, r = divmod(n_shards, n_groups)
    sets, lo = [], 0
    for g in range(n_groups):
        hi = lo + q + (1 if g < r else 0)
        sets.append(list(range(lo, hi)))
        lo = hi
    return sets


# -- the driver --------------------------------------------------------------


def run_sharded(
    spec: ShardedSpec, *, workers: int = 0
) -> tuple[WorldResult, ShardStats]:
    """Run ``spec`` sharded and merge into one :class:`WorldResult`.

    ``workers=0`` runs every shard sequentially in this process (no IPC;
    still windowed, still byte-identical to the parallel mode);
    ``workers>=1`` spawns that many persistent worker processes, each
    owning a contiguous block of shards.
    """
    if spec.world_kwargs.get("nic_contention") and spec.n_shards > 1:
        raise ConfigurationError(
            "nic_contention is incompatible with des shards > 1"
        )
    plan = ShardPlan.build(
        spec.mapping, spec.n_shards, granularity=spec.granularity
    )
    network = spec.world_kwargs.get("network")
    if network is None:
        network = network_for(
            spec.mapping.cluster, n_nodes=spec.mapping.n_nodes
        )
    pairs = (
        cross_shard_rank_pairs(spec.program, plan)
        if plan.n_shards > 1 else set()
    )
    la = lookahead(network, spec.mapping, plan, rank_pairs=pairs)
    shard_sets = _shard_sets(plan.n_shards, workers)
    group: _LocalGroup | _PoolGroup
    if workers >= 1:
        group = _PoolGroup(spec, shard_sets)
    else:
        group = _LocalGroup(spec, shard_sets)
    stats = ShardStats(
        n_shards=plan.n_shards,
        granularity=plan.granularity,
        lookahead_s=la,
        windows=0,
        cross_messages=0,
        events=0,
        shard_events={s: 0 for s in range(plan.n_shards)},
        shard_wall_s={s: 0.0 for s in range(plan.n_shards)},
        workers=len(shard_sets) if workers >= 1 else 0,
        inventory_pairs=len(pairs) if pairs is not None else None,
    )
    try:
        next_times: dict[int, float] = {}
        lives: dict[int, int] = {}
        for reply in group.call_all([("start",)] * len(shard_sets)):
            for s, (nt, live) in reply.items():
                next_times[s] = nt
                lives[s] = live
        pending: dict[int, list[CrossMsg]] = {}
        while True:
            t0 = min(next_times.values())
            for msgs in pending.values():
                for m in msgs:
                    if m.time < t0:
                        t0 = m.time
            if t0 == _INF:
                break
            t_end = t0 + la
            step_msgs = []
            for ids in shard_sets:
                step_msgs.append((
                    "step",
                    t_end,
                    {s: pending.pop(s) for s in ids if s in pending},
                ))
            harvest: list[CrossMsg] = []
            for reply in group.call_all(step_msgs):
                for s, (nt, live, outbox, wall) in reply.items():
                    next_times[s] = nt
                    lives[s] = live
                    harvest.extend(outbox)
                    stats.shard_wall_s[s] += wall
            stats.windows += 1
            if harvest:
                # Canonical injection order: independent of which worker
                # answered first, so every engine's calendar — and the
                # merged result — is schedule-invariant.
                harvest.sort(key=lambda m: (m.time, m.src_shard, m.seq))
                stats.cross_messages += len(harvest)
                for m in harvest:
                    pending.setdefault(
                        plan.shard_of_rank(m.dst_rank), []
                    ).append(m)
        results: dict[int, ShardResult] = {}
        for reply in group.call_all([("finish",)] * len(shard_sets)):
            results.update(reply)
        for s, res in results.items():
            stats.shard_events[s] = res.events_processed
            stats.events += res.events_processed
        blocked = sum(lives.values())
        if blocked:
            _raise_deadlock(spec, results, blocked)
        return _merge(spec, plan, results), stats
    finally:
        group.close()


def _raise_deadlock(
    spec: ShardedSpec, results: dict[int, ShardResult], blocked: int
) -> None:
    exc = DeadlockError(
        f"{blocked} process(es) blocked forever across "
        f"{spec.n_shards} shard(s) (mismatched send/recv or "
        "un-triggered event)"
    )
    if spec.verify:
        from repro.verify.deadlock import diagnose_deadlock

        recorder = _merge_recorders(results)
        if recorder is not None:
            report = diagnose_deadlock(recorder)
            exc = DeadlockError(f"{exc}\n{report.render()}")
            exc.diagnostics = report  # type: ignore[attr-defined]
    raise exc


# -- result merging ----------------------------------------------------------


def _actor_key(actor: str) -> tuple[int, int | str]:
    """Numeric ordering for ``rankN`` actors, lexical for the rest."""
    if actor.startswith("rank") and actor[4:].isdigit():
        return (0, int(actor[4:]))
    return (1, actor)


def _merge_trace(
    shards: list[ShardResult],
) -> TraceRecorder:
    first = shards[0].trace
    merged = TraceRecorder(enabled=first.enabled, mode=first.mode)
    if merged.mode == "full":
        records = [r for sh in shards for r in sh.trace.records]
        # Stable canonical order: (start, actor).  Each actor's own
        # records arrive in its program order (nondecreasing starts), so
        # the per-(phase, actor) totals accumulate in exactly the same
        # order as in the unsharded run — bit-identical floats.
        records.sort(key=lambda r: (r.start, _actor_key(r.actor)))
        for r in records:
            merged.record(r.start, r.duration, r.actor, r.phase, r.detail)
    elif merged.mode == "aggregate":
        totals = merged._totals
        for sh in shards:
            for key, duration in sh.trace._totals.items():
                totals[key] = totals.get(key, 0.0) + duration
    return merged


def _merge_recorders(results: dict[int, ShardResult]) -> CommRecorder | None:
    events = []
    seen = False
    for s in sorted(results):
        evs = results[s].recorder_events
        if evs is None:
            continue
        seen = True
        events.extend(evs)
    if not seen:
        return None
    from repro.verify.recorder import CommRecorder

    recorder = CommRecorder()
    for ev in events:
        recorder.events.append(replace(ev, seq=len(recorder.events)))
    return recorder


def _merge_resilience(
    shards: list[ShardResult],
) -> MergedResilience | None:
    parts = [sh.resilience for sh in shards if sh.resilience is not None]
    if not parts:
        return None
    from repro.verify.diagnostics import Diagnostic

    merged = MergedResilience()
    for part in parts:
        merged.failed_nodes |= part.failed_nodes
        merged.failed_ranks.update(part.failed_ranks)
        merged.finish_times.update(part.finish_times)
        merged.detections.extend(part.detections)
        merged.suspects.extend(part.suspects)
    merged.detections.sort(key=lambda d: (d.time, d.by_rank, d.peer))
    merged.suspects.sort(key=lambda d: (d.time, d.by_rank, d.peer))
    # Injector-global diagnostics (degrade/recover/straggler/noise) are
    # emitted once per shard for the same schedule event: dedupe them.
    # RES001 crash reports name only the shard-local killed ranks: fuse
    # the reports of one (node, time) into one with the full rank list.
    crashes: dict[tuple[int, float], list[int]] = {}
    rest: list[Diagnostic] = []
    seen_keys: set[tuple] = set()
    for part in parts:
        for diag in part.diagnostics:
            if diag.rule_id == "RES001":
                key = (diag.details["node"], diag.details["time"])
                crashes.setdefault(key, []).extend(diag.details["ranks"])
                continue
            dedupe = (diag.rule_id, diag.message, diag.location)
            if diag.rule_id in ("RES004", "RES005", "RES006", "RES007"):
                if dedupe in seen_keys:
                    continue
                seen_keys.add(dedupe)
            rest.append(diag)
    for (node, at), ranks in crashes.items():
        ranks = sorted(set(ranks))
        rest.append(Diagnostic(
            "RES001",
            f"node {node} crashed at t={at:.6g}s, "
            f"terminating rank(s) {ranks}",
            location=f"node {node}",
            details={"node": node, "time": at, "ranks": ranks},
        ))
    rest.sort(key=lambda d: (d.details.get("time", _INF), d.rule_id))
    merged.report.extend(rest)
    return merged


def _merge(
    spec: ShardedSpec,
    plan: ShardPlan,
    results: dict[int, ShardResult],
) -> WorldResult:
    shards = [results[s] for s in sorted(results)]
    rank_results = [
        results[plan.shard_of_rank(rank)].rank_results[rank]
        for rank in range(plan.n_ranks)
    ]
    resilience = _merge_resilience(shards)
    last_event = max(sh.last_event_time for sh in shards)
    if (resilience is not None
            and len(resilience.finish_times) == plan.n_ranks):
        elapsed = max(resilience.finish_times.values())
    else:
        elapsed = last_event
    result = WorldResult(
        elapsed=elapsed,
        rank_results=rank_results,
        trace=_merge_trace(shards),
        resilience=resilience,  # type: ignore[arg-type]
    )
    recorder = _merge_recorders(results)
    if recorder is not None:
        from repro.verify.mpi_rules import check_recorded

        result.diagnostics = check_recorded(
            recorder, title="MPI message check"
        )
    return result
