"""Per-shard sub-world: a :class:`~repro.simmpi.world.World` that owns a
contiguous block of ranks and diverts cross-shard traffic into an outbox.

A :class:`ShardWorld` sees the *full* mapping and network — rank ids,
node placements, and transfer times are identical to the unsharded run —
but only creates generator processes for its own ranks.  The single
delivery seam (:meth:`~repro.simmpi.world.World.schedule_delivery`) is
overridden: a message bound for a remote rank is appended to the outbox
*at send time*, stamped with its virtual delivery time.  Because the
driver only runs windows of one conservative lookahead, every such
message's delivery time is at or beyond the current window's end — the
receiving shard can always still schedule it.

Fault schedules are applied *per shard*: each sub-world runs its own
injector over the same global schedule against its own
:class:`~repro.network.model.NetworkModel` copy, so link-fault timing is
identical everywhere, while rank kills only happen in the shard that owns
the rank (:meth:`ResilienceState.attach_processes` with a dict).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.des.shard.partition import ShardPlan
from repro.des.trace import TraceRecorder
from repro.simmpi.world import RankProgram, World
from repro.util.errors import ConfigurationError, SimulationError

if TYPE_CHECKING:
    from repro.des.engine import Process
    from repro.simmpi.mapping import RankMapping
    from repro.resilience.policy import RankFailure
    from repro.resilience.state import Detection
    from repro.verify.diagnostics import Diagnostic
    from repro.verify.recorder import CommEvent


@dataclass(frozen=True)
class CrossMsg:
    """One cross-shard message in flight.

    ``(time, src_shard, seq)`` is the canonical merge order: the driver
    sorts every window's harvest by it before injection, which makes the
    injection sequence — and therefore each receiving engine's calendar —
    independent of worker scheduling.  ``seq`` is the per-shard send
    counter, so two messages from one shard at one instant keep their
    program order.
    """

    time: float
    src_shard: int
    seq: int
    dst_rank: int
    src: int  # sender's communicator-local rank (channel matching key)
    key: tuple
    payload: Any


class _Delivery:
    """Reusable calendar entry that lands one injected message."""

    __slots__ = ("world", "msg")

    def __init__(self, world: "ShardWorld", msg: CrossMsg) -> None:
        self.world = world
        self.msg = msg

    def _resolve(self) -> None:
        msg = self.msg
        self.world.channel(msg.dst_rank).put(msg.src, msg.key, msg.payload)


@dataclass
class ShardResilience:
    """Picklable snapshot of one shard's ResilienceState after a run."""

    failed_nodes: set[int]
    failed_ranks: "dict[int, RankFailure]"
    finish_times: dict[int, float]
    detections: "list[Detection]"
    suspects: "list[Detection]"
    diagnostics: "list[Diagnostic]"


@dataclass
class ShardResult:
    """Everything one shard contributes to the merged WorldResult."""

    shard: int
    rank_results: dict[int, Any]
    trace: TraceRecorder
    recorder_events: "list[CommEvent] | None"
    resilience: ShardResilience | None
    last_event_time: float
    events_processed: int
    #: per-window wall-clock seconds of this shard (filled by the host).
    window_walls: list[float] = field(default_factory=list)


class ShardWorld(World):
    """One shard's slice of a simulated MPI world."""

    def __init__(
        self,
        mapping: "RankMapping",
        plan: ShardPlan,
        shard_index: int,
        **kwargs: Any,
    ) -> None:
        if plan.n_shards > 1:
            if kwargs.get("nic_contention"):
                raise ConfigurationError(
                    "nic_contention is incompatible with des shards > 1: "
                    "NIC grant order among same-instant requests would "
                    "depend on the shard cut"
                )
            # Closed-form collectives skip the per-message schedule and
            # with it the cross-shard outbox; always simulate in full.
            kwargs["fast_collectives"] = False
            kwargs["hybrid_collectives"] = False
        super().__init__(mapping, **kwargs)
        if plan.n_ranks != mapping.n_ranks:
            raise ConfigurationError(
                f"shard plan covers {plan.n_ranks} ranks, mapping has "
                f"{mapping.n_ranks}"
            )
        self.plan = plan
        self.shard_index = shard_index
        self.outbox: list[CrossMsg] = []
        self._out_seq = 0
        self._processes: "dict[int, Process]" = {}

    # -- the cross-shard seam ------------------------------------------------

    def schedule_delivery(
        self,
        dst_rank: int,
        src_comm_rank: int,
        key: tuple,
        payload: Any,
        t_transfer: float,
    ) -> None:
        if self.plan.shard_of_rank(dst_rank) == self.shard_index:
            super().schedule_delivery(
                dst_rank, src_comm_rank, key, payload, t_transfer
            )
            return
        self._out_seq += 1
        self.outbox.append(CrossMsg(
            time=self.engine.now + t_transfer,
            src_shard=self.shard_index,
            seq=self._out_seq,
            dst_rank=dst_rank,
            src=src_comm_rank,
            key=key,
            payload=payload,
        ))

    def drain_outbox(self) -> list[CrossMsg]:
        out = self.outbox
        self.outbox = []
        return out

    def inject(self, msg: CrossMsg) -> None:
        """Schedule a remote shard's message for local delivery.

        The lookahead invariant makes ``msg.time >= engine.now`` for every
        legally windowed exchange; violating it would mean a cross-shard
        message was delivered into a shard's past, so it is a hard error,
        not a silent clamp.
        """
        if msg.time < self.engine.now:
            raise SimulationError(
                f"cross-shard message for rank {msg.dst_rank} arrives at "
                f"t={msg.time:g}s, but shard {self.shard_index} is already "
                f"at t={self.engine.now:g}s — lookahead violated"
            )
        self.engine._schedule(msg.time, _Delivery(self, msg))

    # -- run lifecycle (start / windows / finish) ----------------------------

    def start(
        self,
        program: RankProgram,
        *args: Any,
        verify: bool = False,
        **kwargs: Any,
    ) -> None:
        """Create this shard's rank processes (mirrors ``World.run``'s
        prologue; the event loop itself is driven window by window)."""
        if verify and self.recorder is None:
            from repro.verify.recorder import CommRecorder

            self.recorder = CommRecorder()
        state = self.resilience
        if state is not None:
            state.start_injector()
        procs: "dict[int, Process]" = {}
        for rank in self.plan.local_ranks(self.shard_index):
            comm = self.comm(rank)
            gen = program(comm, *args, **kwargs)
            if state is not None:
                gen = state.supervise(rank, gen)
            procs[rank] = self.engine.process(gen, label=f"rank{rank}")
        if state is not None:
            state.attach_processes(procs)
        self._processes = procs

    def run_window(self, until: float) -> int:
        """Process every local event up to ``until``; never a deadlock
        error (idle shards are normal mid-run)."""
        return self.engine.run_window(until)

    def next_time(self) -> float:
        return self.engine.next_time()

    @property
    def live(self) -> int:
        return self.engine.live

    def finish(self) -> ShardResult:
        """Collect this shard's results once the driver declared the run
        globally complete."""
        rank_results = {
            rank: proc.value
            for rank, proc in self._processes.items()
            if proc.triggered  # deadlocked ranks have no value yet
        }
        state = self.resilience
        res = None
        if state is not None:
            res = ShardResilience(
                failed_nodes=set(state.failed_nodes),
                failed_ranks=dict(state.failed_ranks),
                finish_times=dict(state.finish_times),
                detections=list(state.detections),
                suspects=list(state.suspects),
                diagnostics=list(state.report),
            )
        return ShardResult(
            shard=self.shard_index,
            rank_results=rank_results,
            trace=self.trace,
            recorder_events=(
                list(self.recorder.events)
                if self.recorder is not None else None
            ),
            resilience=res,
            last_event_time=self.engine.last_event_time,
            events_processed=self.engine.events_processed,
        )
