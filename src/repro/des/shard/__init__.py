"""Sharded parallel DES with conservative lookahead.

Splits one simulated MPI world into independent per-node (or per-CMG)
sub-simulators synchronized in conservative lookahead windows — the
classic Chandy-Misra/YAWNS scheme — so a full-machine simulation can use
multiple cores while reproducing the single-engine run bit-exactly.

See ``docs/PERFORMANCE.md`` (sharded DES section) for the lookahead
derivation and the determinism guarantees, and their limits.
"""

from repro.des.shard.driver import (
    MergedResilience,
    ShardedSpec,
    ShardStats,
    run_sharded,
)
from repro.des.shard.partition import (
    ShardPlan,
    cross_shard_rank_pairs,
    lookahead,
)
from repro.des.shard.subworld import CrossMsg, ShardResult, ShardWorld

__all__ = [
    "CrossMsg",
    "MergedResilience",
    "ShardPlan",
    "ShardResult",
    "ShardStats",
    "ShardWorld",
    "ShardedSpec",
    "cross_shard_rank_pairs",
    "lookahead",
    "run_sharded",
]
