"""Shard partitioning and conservative-lookahead computation.

A :class:`ShardPlan` splits the rank space of one
:class:`~repro.simmpi.mapping.RankMapping` into contiguous blocks of
*units* — whole nodes (default) or CMGs/NUMA domains — so that every
rank, and every NIC, belongs to exactly one shard.  Contiguity matters:
the block rank distribution (``node_of(rank) = rank // ranks_per_node``)
makes rank->shard a constant-time division, and per-shard rank ranges
stay contiguous, which keeps the merged result ordering trivial.

Lookahead derivation
--------------------

The conservative window length is a *lower bound on the transfer time of
any cross-shard message*.  With the LogGP link model
(:mod:`repro.network.linkmodel`),

    t(s, h) = L0 + h*Lh + (s + s_half) / (B * proto(s) * derate(h))

is minimized over sizes at ``s = 1`` for any fixed pair: ``proto(1) = 1``
(one byte is below the bimodal window) while ``proto(s) <= 1``, so
``t(s, h) >= t(1, h)``; and ``t(1, h)`` is nondecreasing in hops
(per-hop latency adds, the hop derate only shrinks bandwidth).  Fault
factors divide the base time by a value in ``[0, 1]``
(:class:`~repro.network.faults.FaultModel` validates the range), so any
fault state — including mid-run degrade/recover transitions — only makes
messages *slower* than the pre-fault base.  Hence

    lookahead = min over cross-shard node pairs of  base t(1, hops(a, b))

never exceeds an actual cross-shard transfer time.  When a shard
boundary cuts through a node (CMG granularity), the shared-memory
transport is the floor: ``t_shm(1) = shm_latency + 1/shm_bandwidth``.

The cross-shard *channel inventory* — which (src, dst) rank pairs can
actually exchange messages, from the symbolic unrolling of the IR
lowering (:mod:`repro.ir.analyze.trace`) — refines the bound: a program
whose only cross-shard traffic is nearest-neighbor halos gets the
one-hop lookahead even on a large fabric.  The inventory is only used
when the unrolling is complete (not truncated); a partial inventory
could miss the fastest link and break conservatism.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.util.errors import ConfigurationError

if TYPE_CHECKING:
    from repro.ir.program import Program
    from repro.network.model import NetworkModel
    from repro.simmpi.mapping import RankMapping

#: node count above which the all-pairs hop minimization is replaced by
#: the universal one-hop floor (still conservative, just less tight).
ALL_PAIRS_NODE_CAP = 1024

#: rank count above which the symbolic channel inventory is skipped
#: (mirrors the static analyzer's own tractability cap).
INVENTORY_RANK_CAP = 4096

GRANULARITIES = ("node", "cmg")


@dataclass(frozen=True)
class ShardPlan:
    """Assignment of partition units (nodes or CMGs) to shards.

    Units are split into ``n_shards`` contiguous, balanced blocks; the
    first ``n_units % n_shards`` shards own one extra unit.  All index
    math is closed-form — the plan is cheap to pickle and to rebuild
    inside worker processes.
    """

    n_shards: int
    granularity: str
    n_units: int
    units_per_node: int
    ranks_per_unit: int
    n_ranks: int

    def __post_init__(self) -> None:
        if self.granularity not in GRANULARITIES:
            raise ConfigurationError(
                f"unknown shard granularity {self.granularity!r}; "
                f"choose from {GRANULARITIES}"
            )
        if self.n_shards < 1:
            raise ConfigurationError("need at least one shard")
        if self.n_shards > self.n_units:
            raise ConfigurationError(
                f"{self.n_shards} shards over {self.n_units} "
                f"{self.granularity} unit(s); shards cannot be empty"
            )

    @classmethod
    def build(
        cls,
        mapping: "RankMapping",
        n_shards: int,
        *,
        granularity: str = "node",
    ) -> "ShardPlan":
        """Plan ``n_shards`` over ``mapping`` at the given granularity.

        CMG granularity uses the node model's NUMA domain count and
        requires ``ranks_per_node`` to divide evenly across domains (the
        paper's 48-rank A64FX nodes split 12 ranks per CMG).
        """
        if granularity == "cmg":
            units_per_node = len(mapping.cluster.node.domains)
            if mapping.ranks_per_node % units_per_node:
                raise ConfigurationError(
                    f"cmg granularity needs ranks_per_node "
                    f"({mapping.ranks_per_node}) divisible by the node's "
                    f"{units_per_node} NUMA domains"
                )
            ranks_per_unit = mapping.ranks_per_node // units_per_node
        else:
            units_per_node = 1
            ranks_per_unit = mapping.ranks_per_node
        return cls(
            n_shards=n_shards,
            granularity=granularity,
            n_units=mapping.n_nodes * units_per_node,
            units_per_node=units_per_node,
            ranks_per_unit=ranks_per_unit,
            n_ranks=mapping.n_ranks,
        )

    # -- index math ----------------------------------------------------------

    def unit_range(self, shard: int) -> range:
        """The contiguous units shard ``shard`` owns."""
        q, r = divmod(self.n_units, self.n_shards)
        lo = shard * q + min(shard, r)
        return range(lo, lo + q + (1 if shard < r else 0))

    def shard_of_unit(self, unit: int) -> int:
        q, r = divmod(self.n_units, self.n_shards)
        pivot = r * (q + 1)
        if unit < pivot:
            return unit // (q + 1)
        return r + (unit - pivot) // q

    def shard_of_rank(self, rank: int) -> int:
        return self.shard_of_unit(rank // self.ranks_per_unit)

    def shard_of_node(self, node: int) -> int:
        """Shard of the node's *first* unit (== the node's only shard at
        node granularity)."""
        return self.shard_of_unit(node * self.units_per_node)

    def local_ranks(self, shard: int) -> range:
        units = self.unit_range(shard)
        return range(units.start * self.ranks_per_unit,
                     units.stop * self.ranks_per_unit)

    def local_nodes(self, shard: int) -> range:
        """Nodes with at least one unit in ``shard`` (may overlap between
        adjacent shards at CMG granularity)."""
        units = self.unit_range(shard)
        return range(units.start // self.units_per_node,
                     (units.stop - 1) // self.units_per_node + 1)

    @property
    def splits_nodes(self) -> bool:
        """True when some node's units land in different shards."""
        if self.units_per_node == 1:
            return False
        return any(
            self.shard_of_unit(node * self.units_per_node)
            != self.shard_of_unit((node + 1) * self.units_per_node - 1)
            for node in range(self.n_units // self.units_per_node)
        )


def cross_shard_rank_pairs(
    program: "Program", plan: ShardPlan
) -> set[tuple[int, int]] | None:
    """Cross-shard (src, dst) rank pairs of the program's lowering.

    Built from the symbolic unrolling of the real lowering rules: user
    sends/recvs contribute their exact pairs; a collective whose members
    straddle shards contributes every cross-shard member pair (its
    internal algorithm may connect any two members).  Returns None when
    the inventory cannot be trusted to be complete — truncated unrolling,
    rank count over :data:`INVENTORY_RANK_CAP`, or an analysis failure —
    and the caller must fall back to the all-pairs bound.
    """
    if plan.n_ranks > INVENTORY_RANK_CAP:
        return None
    from repro.ir.analyze.trace import CollEv, RecvEv, SendEv, unroll
    from repro.util.errors import ReproError

    try:
        traces = unroll(program, plan.n_ranks)
    except ReproError:
        return None
    if traces.truncated:
        # A longer loop could only repeat channels already seen on the
        # unrolled iterations *if* every iteration is structurally alike;
        # fractional-count CommOps break that, so stay conservative.
        return None
    pairs: set[tuple[int, int]] = set()
    for rank in range(plan.n_ranks):
        my_shard = plan.shard_of_rank(rank)
        for ev in traces.events(rank):
            if isinstance(ev, SendEv):
                if plan.shard_of_rank(ev.dst) != my_shard:
                    pairs.add((rank, ev.dst))
            elif isinstance(ev, RecvEv):
                if plan.shard_of_rank(ev.src) != my_shard:
                    pairs.add((ev.src, rank))
            elif isinstance(ev, CollEv) and plan.n_shards > 1:
                # The lowering's collectives span the world communicator:
                # their internal algorithms may connect any two ranks, so
                # the inventory degenerates to all pairs — signal the
                # caller to use the (cheaper) node-level all-pairs bound.
                return None
    return pairs


def lookahead(
    network: "NetworkModel",
    mapping: "RankMapping",
    plan: ShardPlan,
    *,
    rank_pairs: set[tuple[int, int]] | None = None,
) -> float:
    """Conservative window length: the minimum pre-fault transfer time of
    any possible cross-shard message (see the module docstring for the
    proof of conservatism)."""
    link = network.link
    shm_floor = link.p2p_time(1, 0)
    if rank_pairs is not None:
        if not rank_pairs:
            # No cross-shard traffic at all: any finite window works;
            # pick the cross-fabric maximum so windows stay few.
            return max(shm_floor, link.p2p_time(1, 1))
        best = math.inf
        for src, dst in rank_pairs:
            a, b = mapping.node_of(src), mapping.node_of(dst)
            t = shm_floor if a == b else link.p2p_time(1, network.hops(a, b))
            if t < best:
                best = t
        return best
    if plan.splits_nodes:
        return shm_floor
    n_nodes = mapping.n_nodes
    if n_nodes > ALL_PAIRS_NODE_CAP:
        # One hop is the least any two distinct nodes can be apart and
        # t(1, h) is nondecreasing in h: still a valid lower bound.
        return link.p2p_time(1, 1)
    best = math.inf
    for a in range(n_nodes):
        sa = plan.shard_of_node(a)
        for b in range(n_nodes):
            if a == b or plan.shard_of_node(b) == sa:
                continue
            t = link.p2p_time(1, network.hops(a, b))
            if t < best:
                best = t
    return best
