"""Event calendar, virtual clock, and generator-based processes.

Design notes
------------
* Events fire in (time, sequence) order; sequence numbers make the engine
  deterministic under simultaneous events (FIFO among equals), which the
  test suite and the reproducibility guarantees rely on.
* A process is a generator; ``yield event`` suspends until the event fires
  and evaluates to the event's value.  ``yield 1.5e-6`` is sugar for a
  :class:`Timeout`.
* Deadlock is an error, not a hang: if live processes remain but the
  calendar is empty, :class:`~repro.util.errors.DeadlockError` is raised —
  this is how mismatched sends/receives in simulated MPI programs surface.

Hot-path notes
--------------
The engine is the substrate under every simulated campaign, so its inner
loop is tuned for allocation economy rather than generality:

* ``Event.callbacks`` is polymorphic — ``None`` (no waiters), a bare
  callable (one waiter, the overwhelmingly common case), or a list.  Use
  :meth:`Event.add_callback`; most events never allocate a waiter list.
* Each :class:`Process` owns one reusable :class:`_Resume` heap entry used
  for its bootstrap, for bare-``yield <seconds>`` delays, and for resuming
  off already-resolved events — none of those paths allocate an Event.
* :class:`Timeout` skips label formatting; labels are for error messages
  and debugging only.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable

from repro.util.errors import DeadlockError, SimulationError

_INF = float("inf")


class Event:
    """A one-shot occurrence processes can wait on."""

    __slots__ = (
        "engine",
        "callbacks",
        "_value",
        "_ok",
        "_triggered",
        "_resolved",
        "label",
    )

    def __init__(self, engine: "Engine", label: str = "") -> None:
        self.engine = engine
        #: ``None`` | one callable | list of callables (see module notes).
        self.callbacks: Any = None
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._resolved = False
        self.label = label

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError(f"event {self.label!r} read before trigger")
        return self._value

    def add_callback(self, cb: Callable[["Event"], None]) -> None:
        """Register ``cb(event)`` to run when this event resolves."""
        cbs = self.callbacks
        if cbs is None:
            self.callbacks = cb
        elif type(cbs) is list:
            cbs.append(cb)
        else:
            self.callbacks = [cbs, cb]

    def succeed(self, value: Any = None) -> "Event":
        """Schedule this event to fire now with ``value``."""
        if self._triggered:
            raise SimulationError(f"event {self.label!r} triggered twice")
        self._triggered = True
        self._value = value
        self._ok = True
        self.engine._dispatch(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Schedule this event to raise ``exception`` in waiters."""
        if self._triggered:
            raise SimulationError(f"event {self.label!r} triggered twice")
        self._triggered = True
        self._value = exception
        self._ok = False
        self.engine._dispatch(self)
        return self

    def _resolve(self) -> None:
        self._resolved = True
        cbs = self.callbacks
        if cbs is None:
            return
        self.callbacks = None
        if type(cbs) is list:
            for cb in cbs:
                cb(self)
        else:
            cbs(self)


class Timeout(Event):
    """An event that fires after a fixed virtual delay."""

    __slots__ = ()

    def __init__(self, engine: "Engine", delay: float, value: Any = None) -> None:
        if not 0.0 <= delay < _INF:
            raise SimulationError(f"timeout delay must be finite and >= 0, got {delay}")
        # Inlined Event.__init__ without per-event label formatting.
        self.engine = engine
        self.callbacks = None
        self._value = value
        self._ok = True
        self._triggered = True  # a timeout cannot be succeeded externally
        self._resolved = False
        self.label = "timeout"
        # Inlined engine._schedule (delay >= 0 means `at` is never in the past).
        engine._seq = seq = engine._seq + 1
        heappush(engine._heap, (engine._now + delay, seq, self))


class _Resume:
    """A process's reusable heap entry (boot, bare delays, late waits).

    A process has at most one outstanding wait, so one instance per process
    can stand in for the throwaway Events the engine would otherwise
    allocate for its bootstrap, for every ``yield <seconds>``, and for
    resuming off an event that already ran its callbacks.
    """

    __slots__ = ("process", "_value", "_ok")

    def __init__(self, process: "Process") -> None:
        self.process = process
        self._value: Any = None
        self._ok = True

    def _resolve(self) -> None:
        self.process._step(self)


ProcessGen = Generator[Any, Any, Any]


class Process(Event):
    """A running generator; also an Event that fires when it returns.

    The event's value is the generator's return value, so processes can
    ``yield`` other processes to join them.
    """

    __slots__ = ("generator", "_resume", "_dead")

    def __init__(self, engine: "Engine", generator: ProcessGen, label: str = "") -> None:
        super().__init__(engine, label=label or getattr(generator, "__name__", "proc"))
        self.generator = generator
        self._dead = False
        engine._live += 1
        # Bootstrap at the current time through the reusable resume entry.
        self._resume = resume = _Resume(self)
        engine._schedule(engine._now, resume)

    def kill(self, value: Any = None) -> bool:
        """Terminate this process now; its event resolves with ``value``.

        Used by the fault-injection layer to model a node crash: the
        generator is closed (``finally`` blocks run, releasing resources),
        the live count drops, and any stale heap entries for the process
        become no-ops.  Returns False if the process already finished.
        """
        if self._triggered:
            return False
        self._dead = True
        self.generator.close()
        self.engine._live -= 1
        Event.succeed(self, value)
        return True

    def _step(self, trigger: Any) -> None:
        if self._dead:
            return  # killed while this resume/callback was already queued
        engine = self.engine
        try:
            if trigger._ok:
                target = self.generator.send(trigger._value)
            else:
                target = self.generator.throw(trigger._value)
        except StopIteration as stop:
            engine._live -= 1
            super().succeed(stop.value)
            return
        except BaseException as exc:
            engine._live -= 1
            if self.callbacks is not None:
                super().fail(exc)
                return
            raise
        cls = target.__class__
        if cls is float or cls is int:
            # Bare-delay fast path: no Timeout, no callback registration.
            if not 0.0 <= target < _INF:
                raise SimulationError(
                    f"timeout delay must be finite and >= 0, got {target}"
                )
            resume = self._resume
            resume._value = None
            resume._ok = True
            engine._seq = seq = engine._seq + 1
            heappush(engine._heap, (engine._now + target, seq, resume))
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.label!r} yielded {type(target).__name__}, "
                "expected an Event or a delay in seconds"
            )
        if target._resolved:
            # The event already fired and ran its callbacks; a late waiter
            # must be resumed explicitly or it would sleep forever.
            resume = self._resume
            resume._value = target._value
            resume._ok = target._ok
            engine._seq = seq = engine._seq + 1
            heappush(engine._heap, (engine._now, seq, resume))
        elif target.callbacks is None:
            target.callbacks = self._step
        else:
            target.add_callback(self._step)


class Engine:
    """The event calendar and virtual clock."""

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, Any]] = []
        self._seq = 0
        self._live = 0  # processes started and not yet finished
        #: cumulative count of processed (popped and resolved) calendar
        #: entries — the events/s denominator of the engine benchmarks.
        self.events_processed = 0
        #: time of the last *processed* entry.  ``run(until)`` and
        #: :meth:`run_window` advance :attr:`now` to the window end even
        #: when nothing fired there; this keeps the real activity time.
        self.last_event_time = 0.0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def live(self) -> int:
        """Processes started and not yet finished."""
        return self._live

    def next_time(self) -> float:
        """Timestamp of the earliest pending calendar entry (inf if none)."""
        return self._heap[0][0] if self._heap else _INF

    # -- scheduling ---------------------------------------------------------

    def _schedule(self, at: float, event: Any) -> None:
        if at < self._now:
            raise SimulationError(f"cannot schedule event in the past ({at} < {self._now})")
        self._seq += 1
        heappush(self._heap, (at, self._seq, event))

    def _dispatch(self, event: Event) -> None:
        """Queue an externally triggered event at the current time."""
        self._schedule(self._now, event)

    # -- public API ---------------------------------------------------------

    def event(self, label: str = "") -> Event:
        return Event(self, label)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGen, label: str = "") -> Process:
        """Register a generator as a process starting at the current time."""
        return Process(self, generator, label=label)

    def run(self, until: float | None = None) -> float:
        """Execute events until the calendar drains (or ``until`` is reached).

        Returns the final virtual time.  Raises DeadlockError if processes
        remain alive with nothing scheduled.
        """
        heap = self._heap
        n = 0
        if until is None:
            while heap:
                at, _, event = heappop(heap)
                self._now = at
                event._resolve()
                n += 1
        else:
            while heap:
                if heap[0][0] > until:
                    break
                at, _, event = heappop(heap)
                self._now = at
                event._resolve()
                n += 1
        self.events_processed += n
        if n:
            self.last_event_time = self._now
        if until is not None and heap:
            self._now = until
            return until
        if self._live > 0:
            raise DeadlockError(
                f"{self._live} process(es) blocked forever at t={self._now:g}s "
                "(mismatched send/recv or un-triggered event)"
            )
        return self._now

    def run_window(self, until: float) -> int:
        """Process every calendar entry with timestamp <= ``until``.

        The windowed-execution primitive of the sharded driver
        (:mod:`repro.des.shard`): unlike :meth:`run`, draining the
        calendar with live processes is *not* an error here — a shard
        legitimately goes idle while a cross-shard message is in flight.
        The clock is left at ``until`` so later injected deliveries
        (which the lookahead guarantees to be >= the window end) are
        never in the engine's past.  Returns the number of entries
        processed; deadlock detection is the caller's job, globally.
        """
        heap = self._heap
        n = 0
        while heap and heap[0][0] <= until:
            at, _, event = heappop(heap)
            self._now = at
            event._resolve()
            n += 1
        self.events_processed += n
        if n:
            self.last_event_time = self._now
        self._now = until
        return n

    def run_all(self, generators: Iterable[ProcessGen]) -> float:
        """Convenience: register all generators, run to completion."""
        for i, gen in enumerate(generators):
            self.process(gen, label=f"proc{i}")
        return self.run()
