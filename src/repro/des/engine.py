"""Event calendar, virtual clock, and generator-based processes.

Design notes
------------
* Events fire in (time, sequence) order; sequence numbers make the engine
  deterministic under simultaneous events (FIFO among equals), which the
  test suite and the reproducibility guarantees rely on.
* A process is a generator; ``yield event`` suspends until the event fires
  and evaluates to the event's value.  ``yield 1.5e-6`` is sugar for a
  :class:`Timeout`.
* Deadlock is an error, not a hang: if live processes remain but the
  calendar is empty, :class:`~repro.util.errors.DeadlockError` is raised —
  this is how mismatched sends/receives in simulated MPI programs surface.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable

from repro.util.errors import DeadlockError, SimulationError


class Event:
    """A one-shot occurrence processes can wait on."""

    __slots__ = (
        "engine",
        "callbacks",
        "_value",
        "_ok",
        "_triggered",
        "_resolved",
        "label",
    )

    def __init__(self, engine: "Engine", label: str = ""):
        self.engine = engine
        self.callbacks: list[Callable[[Event], None]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._resolved = False
        self.label = label

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError(f"event {self.label!r} read before trigger")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Schedule this event to fire now with ``value``."""
        if self._triggered:
            raise SimulationError(f"event {self.label!r} triggered twice")
        self._triggered = True
        self._value = value
        self._ok = True
        self.engine._dispatch(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Schedule this event to raise ``exception`` in waiters."""
        if self._triggered:
            raise SimulationError(f"event {self.label!r} triggered twice")
        self._triggered = True
        self._value = exception
        self._ok = False
        self.engine._dispatch(self)
        return self

    def _resolve(self) -> None:
        self._resolved = True
        callbacks, self.callbacks = self.callbacks, []
        for cb in callbacks:
            cb(self)


class Timeout(Event):
    """An event that fires after a fixed virtual delay."""

    __slots__ = ()

    def __init__(self, engine: "Engine", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout {delay}")
        super().__init__(engine, label=f"timeout({delay:g})")
        self._triggered = True  # a timeout cannot be succeeded externally
        self._value = value
        engine._schedule(engine.now + delay, self)


ProcessGen = Generator[Any, Any, Any]


class Process(Event):
    """A running generator; also an Event that fires when it returns.

    The event's value is the generator's return value, so processes can
    ``yield`` other processes to join them.
    """

    __slots__ = ("generator",)

    def __init__(self, engine: "Engine", generator: ProcessGen, label: str = ""):
        super().__init__(engine, label=label or getattr(generator, "__name__", "proc"))
        self.generator = generator
        engine._live += 1
        # Bootstrap at the current time.
        boot = Event(engine, label=f"start:{self.label}")
        boot.callbacks.append(self._step)
        boot._triggered = True
        engine._schedule(engine.now, boot)

    def _step(self, trigger: Event) -> None:
        engine = self.engine
        try:
            if trigger._ok:
                target = self.generator.send(trigger._value)
            else:
                target = self.generator.throw(trigger._value)
        except StopIteration as stop:
            engine._live -= 1
            super().succeed(stop.value)
            return
        except BaseException as exc:
            engine._live -= 1
            if self.callbacks:
                super().fail(exc)
                return
            raise
        if isinstance(target, (int, float)):
            target = Timeout(engine, float(target))
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.label!r} yielded {type(target).__name__}, "
                "expected an Event or a delay in seconds"
            )
        if target._resolved:
            # The event already fired and ran its callbacks; a late waiter
            # must be resumed explicitly or it would sleep forever.
            resume = Event(engine, label=f"resume:{self.label}")
            resume._triggered = True
            resume._value = target._value
            resume._ok = target._ok
            resume.callbacks.append(self._step)
            engine._schedule(engine.now, resume)
        else:
            target.callbacks.append(self._step)


class Engine:
    """The event calendar and virtual clock."""

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._live = 0  # processes started and not yet finished

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    # -- scheduling ---------------------------------------------------------

    def _schedule(self, at: float, event: Event) -> None:
        if at < self._now:
            raise SimulationError(f"cannot schedule event in the past ({at} < {self._now})")
        self._seq += 1
        heapq.heappush(self._heap, (at, self._seq, event))

    def _dispatch(self, event: Event) -> None:
        """Queue an externally triggered event at the current time."""
        self._schedule(self._now, event)

    # -- public API ---------------------------------------------------------

    def event(self, label: str = "") -> Event:
        return Event(self, label)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGen, label: str = "") -> Process:
        """Register a generator as a process starting at the current time."""
        return Process(self, generator, label=label)

    def run(self, until: float | None = None) -> float:
        """Execute events until the calendar drains (or ``until`` is reached).

        Returns the final virtual time.  Raises DeadlockError if processes
        remain alive with nothing scheduled.
        """
        while self._heap:
            at, _, event = self._heap[0]
            if until is not None and at > until:
                self._now = until
                return self._now
            heapq.heappop(self._heap)
            self._now = at
            event._resolve()
        if self._live > 0:
            raise DeadlockError(
                f"{self._live} process(es) blocked forever at t={self._now:g}s "
                "(mismatched send/recv or un-triggered event)"
            )
        return self._now

    def run_all(self, generators: Iterable[ProcessGen]) -> float:
        """Convenience: register all generators, run to completion."""
        for i, gen in enumerate(generators):
            self.process(gen, label=f"proc{i}")
        return self.run()
