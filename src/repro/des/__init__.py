"""Discrete-event simulation core.

A minimal, dependency-free process-based DES in the style of SimPy:
processes are Python generators that yield :class:`Event` objects (or plain
floats, read as delays in virtual seconds) and are resumed when the event
fires.  The engine keeps a binary-heap event calendar and a virtual clock.

The simulated MPI (:mod:`repro.simmpi`) builds rendezvous channels and
collectives on these primitives; real numpy payloads flow between rank
programs while the clock advances according to the hardware models.
"""

from repro.des.engine import Engine, Event, Process, Timeout
from repro.des.resources import Resource, Channel, AllOf, AnyOf
from repro.des.trace import TraceRecorder, TraceRecord, phase_matches

__all__ = [
    "Engine",
    "Event",
    "Process",
    "Timeout",
    "Resource",
    "Channel",
    "AllOf",
    "AnyOf",
    "TraceRecorder",
    "TraceRecord",
    "phase_matches",
]
