"""Node power and energy-to-solution models (extension).

The paper's related work ([2] ThunderX2, [4] A64FX power/performance/area)
evaluates the energy dimension the CLUSTER'21 paper leaves out.  This
package adds it: a per-node power model (idle + active-core + bandwidth-
proportional memory/NIC terms) calibrated against public numbers — Fugaku's
Green500 efficiency (~15 GFlop/s/W under HPL) and Skylake-SP node power
(~400 W under load) — plus energy-to-solution accounting for the modeled
benchmark and application runs.

The headline extension finding (``repro-lab run ext_energy``): the A64FX
node draws less than half the power, so although the untuned applications
run 2-4x *slower* on CTE-Arm, their *energy* penalty is only ~1-1.7x —
and LINPACK/HPCG are strictly cheaper in energy on the A64FX.
"""

from repro.power.model import (
    PowerModel,
    EnergyReport,
    POWER_MODELS,
    a64fx_power,
    skylake_power,
    thunderx2_power,
    power_model_for,
    app_energy,
    linpack_energy,
)

__all__ = [
    "PowerModel",
    "EnergyReport",
    "POWER_MODELS",
    "a64fx_power",
    "skylake_power",
    "thunderx2_power",
    "power_model_for",
    "app_energy",
    "linpack_energy",
]
