"""Per-node power and energy-to-solution accounting.

Node power = idle + active_cores * core_active_w
           + memory_traffic_GBs * mem_w_per_gbs
           + nic_traffic_GBs * nic_w_per_gbs

Calibration anchors (public data, see package docstring):

* A64FX node under HPL ~190 W (Fugaku Green500, Nov 2020: ~15 GF/W with
  the whole-system overheads; a bare node lands near
  2872 GF / 15 GF/W ~ 190 W);
* dual-Skylake-8160 node under load ~400 W (2 x 150 W TDP + DDR4 + board).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.base import AppModel
from repro.machine.cluster import ClusterModel
from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class PowerModel:
    """Power characteristics of one node."""

    name: str
    idle_w: float
    core_active_w: float
    mem_w_per_gbs: float
    nic_w_per_gbs: float = 0.25

    def __post_init__(self) -> None:
        if min(self.idle_w, self.core_active_w, self.mem_w_per_gbs) < 0:
            raise ConfigurationError("power terms must be non-negative")

    def node_power(
        self,
        active_cores: int,
        *,
        mem_bw_gbs: float = 0.0,
        nic_bw_gbs: float = 0.0,
    ) -> float:
        """Instantaneous node power draw in watts."""
        if active_cores < 0 or mem_bw_gbs < 0 or nic_bw_gbs < 0:
            raise ConfigurationError("activity must be non-negative")
        return (
            self.idle_w
            + active_cores * self.core_active_w
            + mem_bw_gbs * self.mem_w_per_gbs
            + nic_bw_gbs * self.nic_w_per_gbs
        )


#: A64FX node: 48 cores, HBM2; full-load ~190 W.
A64FX_POWER = PowerModel(
    name="A64FX node",
    idle_w=60.0,
    core_active_w=2.2,
    mem_w_per_gbs=0.030,
)

#: Dual Skylake 8160 node: full-load ~400 W.
SKYLAKE_POWER = PowerModel(
    name="Skylake node",
    idle_w=120.0,
    core_active_w=5.2,
    mem_w_per_gbs=0.150,
)

#: Dual ThunderX2 CN9980 node: full-load ~375 W (FGCS 2020 Dibona study).
THUNDERX2_POWER = PowerModel(
    name="ThunderX2 node",
    idle_w=100.0,
    core_active_w=4.0,
    mem_w_per_gbs=0.100,
)

#: Power models by registry key — :class:`repro.machine.MachinePreset`
#: carries one of these keys in its ``power`` field.
POWER_MODELS: dict[str, PowerModel] = {
    "a64fx": A64FX_POWER,
    "skylake": SKYLAKE_POWER,
    "thunderx2": THUNDERX2_POWER,
}


def a64fx_power() -> PowerModel:
    return A64FX_POWER


def skylake_power() -> PowerModel:
    return SKYLAKE_POWER


def thunderx2_power() -> PowerModel:
    return THUNDERX2_POWER


def power_model_for(cluster: ClusterModel) -> PowerModel:
    """The power model matching a cluster.

    Resolved through the machine registry when the cluster name matches a
    registered preset (the preset's ``power`` key), falling back to a
    CPU-name heuristic for ad-hoc :class:`ClusterModel` instances.
    """
    from repro.machine.presets import MACHINES

    if cluster.name in MACHINES:
        key = MACHINES.resolve(cluster.name).power
        if key in POWER_MODELS:
            return POWER_MODELS[key]
    core_name = cluster.node.core_model.name
    if core_name.startswith("A64FX"):
        return A64FX_POWER
    if "ThunderX2" in core_name:
        return THUNDERX2_POWER
    return SKYLAKE_POWER


@dataclass(frozen=True)
class EnergyReport:
    """Energy-to-solution of one run."""

    cluster: str
    n_nodes: int
    seconds: float
    mean_node_power_w: float

    @property
    def total_power_w(self) -> float:
        return self.mean_node_power_w * self.n_nodes

    @property
    def energy_j(self) -> float:
        return self.total_power_w * self.seconds

    @property
    def energy_kwh(self) -> float:
        return self.energy_j / 3.6e6


def app_energy(
    app: AppModel, cluster: ClusterModel, n_nodes: int, *, steps: int | None = None
) -> EnergyReport:
    """Energy-to-solution of an application run.

    The node's memory traffic during the run is estimated from the phase
    byte totals; all allocated cores count as active (MPI ranks spin in
    collectives — the realistic accounting for these codes).
    """
    timing = app.time_step(cluster, n_nodes)
    n_steps = app.steps_per_run if steps is None else steps
    seconds = timing.total * n_steps
    mapping = app.mapping(cluster, n_nodes)
    total_bytes = sum(ph.bytes_moved for ph in app.phases(mapping))
    mem_gbs_per_node = (total_bytes / timing.total) / n_nodes / 1e9
    pm = power_model_for(cluster)
    active = mapping.ranks_per_node * mapping.threads_per_rank
    power = pm.node_power(active, mem_bw_gbs=mem_gbs_per_node)
    return EnergyReport(
        cluster=cluster.name,
        n_nodes=n_nodes,
        seconds=seconds,
        mean_node_power_w=power,
    )


def linpack_energy(cluster: ClusterModel, n_nodes: int) -> tuple[EnergyReport, float]:
    """Energy of one HPL run and the resulting GFlop/s/W."""
    from repro.bench.linpack import linpack_point

    point = linpack_point(cluster, n_nodes)
    pm = power_model_for(cluster)
    # HPL saturates the cores and streams panels: assume ~40 % of the
    # node's sustainable bandwidth during the GEMM-dominated run.
    mem_gbs = 0.4 * cluster.node.sustainable_memory_bandwidth / 1e9
    power = pm.node_power(cluster.node.cores, mem_bw_gbs=mem_gbs)
    report = EnergyReport(
        cluster=cluster.name,
        n_nodes=n_nodes,
        seconds=point.elapsed_seconds,
        mean_node_power_w=power,
    )
    gflops_per_w = point.gflops / (power * n_nodes)
    return report, gflops_per_w
