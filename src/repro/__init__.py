"""repro — a cluster-evaluation laboratory in Python.

Reproduction of Banchelli et al., *Cluster of emerging technology: evaluation
of a production HPC system based on A64FX* (IEEE CLUSTER 2021).

The package models two production clusters — CTE-Arm (Fujitsu A64FX, TofuD)
and MareNostrum 4 (Intel Skylake, OmniPath) — from first principles, executes
MPI+OpenMP workloads against the models in virtual time, provides real numpy
kernels for every benchmark the paper runs, and regenerates every figure and
table of the paper's evaluation.

Quick start::

    from repro.machine import cte_arm, marenostrum4
    from repro.harness import run_experiment

    result = run_experiment("fig6_linpack")
    print(result.render())

See DESIGN.md for the system inventory and EXPERIMENTS.md for
paper-vs-measured results.
"""

__version__ = "1.0.0"

from repro.machine import cte_arm, marenostrum4, get_preset

__all__ = ["cte_arm", "marenostrum4", "get_preset", "__version__"]
