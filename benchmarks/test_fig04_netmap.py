"""Fig. 4: all-pairs (192x192) bandwidth map at 256 B on the TofuD fabric."""

import numpy as np

from repro.bench.osu import fig4_data, find_weak_links
from repro.network.faults import WEAK_NODE_INDEX


def test_fig04_netmap(benchmark):
    m = benchmark(fig4_data)
    assert m.shape == (192, 192)
    assert np.all(np.isnan(np.diag(m)))
    report = find_weak_links(m)
    assert report.weak_receivers == [WEAK_NODE_INDEX]
    assert report.weak_senders == []
