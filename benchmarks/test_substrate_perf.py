"""Substrate performance benchmarks: DES engine, simulated MPI, kernels.

Not tied to one figure — these track the laboratory's own performance
(events/second through the engine, collectives at growing rank counts,
real kernel throughput) so regressions in the simulator itself are visible.
"""

import numpy as np

from repro.apps.miniapps import cg_miniapp, stencil_miniapp
from repro.des import Engine
from repro.kernels.fem import assemble_stiffness, box_mesh
from repro.machine import cte_arm
from repro.simmpi import RankMapping, VirtualPayload, World


def test_des_event_throughput(benchmark):
    def run_events():
        eng = Engine()

        def ticker():
            for _ in range(2000):
                yield eng.timeout(1e-6)

        eng.process(ticker())
        return eng.run()

    elapsed = benchmark(run_events)
    assert elapsed > 0


def test_simmpi_allreduce_64_ranks(benchmark):
    cluster = cte_arm(12)

    def run_allreduce():
        world = World(RankMapping(cluster, n_nodes=8, ranks_per_node=8))

        def program(comm):
            for _ in range(5):
                yield from comm.allreduce(VirtualPayload(8))

        return world.run(program).elapsed

    assert benchmark(run_allreduce) > 0


def test_stencil_miniapp_end_to_end(benchmark):
    cluster = cte_arm(12)

    def run_miniapp():
        world = World(RankMapping(cluster, n_nodes=4, ranks_per_node=4))
        return world.run(stencil_miniapp, global_shape=(64, 64), steps=4)

    res = benchmark(run_miniapp)
    assert res.elapsed > 0


def test_cg_miniapp_end_to_end(benchmark):
    cluster = cte_arm(12)

    def run_cg():
        world = World(RankMapping(cluster, n_nodes=2, ranks_per_node=4))
        return world.run(cg_miniapp, n=128, tol=1e-8)

    res = benchmark(run_cg)
    assert res.rank_results[0]["residual"] < 1e-5


def test_fem_assembly_kernel(benchmark):
    mesh = box_mesh(8, 8, 8)

    def assemble():
        return assemble_stiffness(mesh, batch=2048)

    a = benchmark(assemble)
    assert abs(a - a.T).max() < 1e-12
