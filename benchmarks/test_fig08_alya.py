"""Fig. 8: Alya average-time-step strong scaling on both machines."""

from repro.apps import AlyaModel


def test_fig08_alya_scaling(benchmark, arm, mn4):
    app = AlyaModel()

    def sweep():
        arm_t = {n: app.time_step(arm, n).total for n in (12, 16, 32, 44, 64)}
        mn4_t = {n: app.time_step(mn4, n).total for n in (12, 16)}
        return arm_t, mn4_t

    arm_t, mn4_t = benchmark(sweep)
    ratio12 = arm_t[12] / mn4_t[12]
    assert 3.0 < ratio12 < 3.8  # paper: 3.4x
    # 44 CTE-Arm nodes match 12 MareNostrum 4 nodes.
    assert arm_t[44] <= mn4_t[12] * 1.1
    assert arm_t[32] > mn4_t[12]
