"""Benchmarks of the extension ablations (each regenerates its experiment)."""

import pytest

from repro.harness import run_experiment

FAST_ABLATIONS = [
    "ext_paging",
    "ext_vectorization",
    "ext_scalar_ooo",
    "ext_scheduler",
    "ext_topology",
    "ext_energy",
    "ext_roofline",
    "ext_interconnect",
    "ext_weak_scaling",
]


@pytest.mark.parametrize("exp_id", FAST_ABLATIONS)
def test_ablation(benchmark, exp_id):
    result = benchmark.pedantic(run_experiment, args=(exp_id,), rounds=1,
                                iterations=1)
    assert result.all_hold, [e.render() for e in result.expectations
                             if not e.holds]
