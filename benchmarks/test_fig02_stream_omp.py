"""Fig. 2: STREAM OpenMP thread sweep (model) and the real host STREAM."""

from repro.bench.stream_bench import best_point, fig2_data
from repro.kernels.stream import run_stream


def test_fig02_stream_openmp_sweep(benchmark):
    data = benchmark(fig2_data)
    arm_c = [p for p in data if p.cluster == "CTE-Arm" and p.language == "c"]
    best = best_point(arm_c)
    assert abs(best.bandwidth / 1e9 - 292.0) < 3.0
    assert best.threads == 24
    mn4 = best_point([p for p in data if "Nostrum" in p.cluster])
    assert abs(mn4.bandwidth / 1e9 - 201.2) < 2.0


def test_fig02_real_stream_triad(benchmark):
    """The actual STREAM kernels on this host, verified arithmetic."""
    bw = benchmark(run_stream, 1_000_000, 3)
    assert bw["triad"] > 1e8
