"""Fig. 13: Gromacs multi-node scaling with the 16-rank anomaly."""

from repro.apps import GromacsModel


def test_fig13_gromacs_multi(benchmark, arm, mn4):
    app = GromacsModel()
    alt = GromacsModel(anomaly=False)

    def sweep():
        return {
            "arm144": app.days_per_ns(arm, 144),
            "mn4144": app.days_per_ns(mn4, 144),
            "arm2_8x6": app.days_per_ns(arm, 2),    # 16 ranks -> anomaly
            "arm2_12x8": alt.days_per_ns(arm, 2),   # alternative layout
        }

    d = benchmark(sweep)
    assert 1.3 < d["arm144"] / d["mn4144"] < 1.9   # paper: 1.5x at 144 nodes
    assert d["arm2_8x6"] > 1.25 * d["arm2_12x8"]   # the anomaly spike
