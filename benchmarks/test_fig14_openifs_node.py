"""Fig. 14: OpenIFS TL255L91 single-node sweep, plus the real spectral step."""

from repro.apps.openifs import OpenIFSModel
from repro.kernels.spectral import (
    SpectralGrid,
    initial_vorticity,
    step_rk3,
    total_enstrophy,
)


def test_fig14_openifs_single_node(benchmark, arm, mn4):
    app = OpenIFSModel("TL255L91")

    def sweep():
        return dict(app.single_node_sweep(arm)), dict(app.single_node_sweep(mn4))

    arm_s, mn4_s = benchmark(sweep)
    assert 3.0 < arm_s[8] / mn4_s[8] < 4.0     # paper: 3.72x at 8 ranks
    assert 2.9 < arm_s[48] / mn4_s[48] < 3.8   # paper: 3.28x full node


def test_fig14_real_spectral_step(benchmark):
    grid = SpectralGrid(128)
    z0 = initial_vorticity(grid, seed=0)

    def step():
        return step_rk3(z0, grid, dt=5e-4, nu=1e-4)

    z1 = benchmark(step)
    assert total_enstrophy(z1) > 0
