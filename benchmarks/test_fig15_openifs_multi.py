"""Fig. 15: OpenIFS TC0511L91 multi-node scaling (alltoall-dominated)."""

import pytest

from repro.apps.openifs import OpenIFSModel
from repro.util.errors import OutOfMemoryError


def test_fig15_openifs_multi(benchmark, arm, mn4):
    app = OpenIFSModel("TC0511L91")

    def sweep():
        return {
            "arm32": app.seconds_per_simulated_day(arm, 32),
            "arm128": app.seconds_per_simulated_day(arm, 128),
            "mn432": app.seconds_per_simulated_day(mn4, 32),
            "mn4128": app.seconds_per_simulated_day(mn4, 128),
        }

    s = benchmark(sweep)
    assert 2.9 < s["arm32"] / s["mn432"] < 4.0    # paper: 3.55x
    assert 2.2 < s["arm128"] / s["mn4128"] < 3.0  # paper: 2.56x
    with pytest.raises(OutOfMemoryError):  # memory gate below 32 nodes
        app.time_step(arm, 31)
