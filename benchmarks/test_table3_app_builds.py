"""Table III: application build-configuration table + deployment replay."""

from repro.apps import ALL_APPS, get_app
from repro.machine import cte_arm
from repro.toolchain.flags import table3


def test_table3_app_builds(benchmark):
    t = benchmark(table3)
    assert len(t.rows) == 10
    assert all(c.startswith("GNU") for c, cl in
               zip(t.column("Compiler"), t.column("Cluster"))
               if cl == "cte-arm")


def test_table3_deployment_replay(benchmark, arm):
    def replay():
        return {name: get_app(name).build_log(arm) for name in ALL_APPS}

    logs = benchmark(replay)
    assert all(log[-1][1] == "ok" for log in logs.values())
