"""Fig. 5: bandwidth distributions over message sizes 1 B - 16 MiB."""

import numpy as np

from repro.bench.osu import fig5_data
from repro.util.stats import is_bimodal
from repro.util.units import KIB, MIB


def test_fig05_netdist(benchmark):
    dists = benchmark(fig5_data, max_pairs=1000)
    assert len(dists) == 25  # 2^0 .. 2^24
    # mid-size bimodality
    mid = [s for s in dists if 1 * KIB <= s < 256 * KIB
           and is_bimodal(dists[s] / 1e6)]
    assert len(mid) >= 4
    # large-message variability
    big = dists[16 * MIB] / 1e6
    spread = (np.percentile(big, 95) - np.percentile(big, 5)) / np.median(big)
    assert spread > 0.2
