"""Fig. 6: LINPACK scalability sweep (model) and the real blocked-LU kernel."""

import numpy as np

from repro.bench.linpack import fig6_data
from repro.kernels.lu import blocked_lu, hpl_residual, lu_solve


def test_fig06_linpack_sweep(benchmark):
    pts = benchmark(fig6_data)
    arm = {p.n_nodes: p for p in pts if p.cluster == "CTE-Arm"}
    mn4 = {p.n_nodes: p for p in pts if p.cluster != "CTE-Arm"}
    assert abs(arm[192].percent_of_peak - 85.0) < 1.0
    assert abs(mn4[192].percent_of_peak - 63.0) < 1.5
    assert abs(arm[1].gflops / mn4[1].gflops - 1.25) < 0.05
    assert abs(arm[192].gflops / mn4[192].gflops - 1.40) < 0.05


def test_fig06_real_blocked_lu(benchmark):
    rng = np.random.default_rng(0)
    n = 192
    a = rng.normal(size=(n, n))
    b = rng.normal(size=n)

    def factor_and_solve():
        lu, piv = blocked_lu(a.copy(), block=48)
        return lu_solve(lu, piv, b)

    x = benchmark(factor_and_solve)
    assert hpl_residual(a, x, b) < 16.0
