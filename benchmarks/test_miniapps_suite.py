"""Benchmarks of the five distributed mini-apps (paper workload patterns)."""

import numpy as np

from repro.apps.miniapp_fem import fem_miniapp
from repro.apps.miniapp_md import md_miniapp
from repro.apps.miniapp_spectral import spectral_miniapp
from repro.apps.miniapps_linalg import fft_transpose_miniapp, lu_miniapp
from repro.machine import cte_arm
from repro.simmpi import RankMapping, World


def _world(p: int) -> World:
    cluster = cte_arm(12)
    n_nodes = min(p, 4)
    return World(RankMapping(cluster, n_nodes=n_nodes,
                             ranks_per_node=-(-p // n_nodes)))


def test_lu_miniapp_bench(benchmark):
    def run():
        return _world(4).run(lu_miniapp, n=48)

    res = benchmark(run)
    assert res.rank_results[0]["residual"] < 1e-9


def test_fem_miniapp_bench(benchmark):
    def run():
        return _world(4).run(fem_miniapp, cells=3)

    res = benchmark(run)
    assert res.rank_results[0]["residual"] < 1e-7


def test_md_miniapp_bench(benchmark):
    def run():
        return _world(3).run(md_miniapp, n_side=7, steps=3)

    res = benchmark(run)
    assert sum(r["n_owned"] for r in res.rank_results) == 343


def test_spectral_miniapp_bench(benchmark):
    def run():
        return _world(4).run(spectral_miniapp, n=32, steps=2)

    res = benchmark(run)
    e = res.rank_results[0]["enstrophy"]
    assert np.isfinite(e).all()


def test_fft_transpose_bench(benchmark):
    def run():
        return _world(4).run(fft_transpose_miniapp, n=64)

    res = benchmark(run)
    assert res.rank_results[0]["error"] < 1e-10
