"""Fig. 10: Alya Solver phase — HBM compensates the weak scalar core."""

from repro.apps import AlyaModel


def test_fig10_alya_solver(benchmark, arm, mn4):
    app = AlyaModel()

    def phase_times():
        a = app.time_step(arm, 12).phase_seconds["solver"]
        m = app.time_step(mn4, 12).phase_seconds["solver"]
        a22 = app.time_step(arm, 22).phase_seconds["solver"]
        return a, m, a22

    a, m, a22 = benchmark(phase_times)
    assert 1.6 < a / m < 2.0        # paper: 1.79x, far below assembly's 4.96x
    assert a22 <= m * 1.1           # ~22 CTE-Arm nodes match 12 MN4 nodes
