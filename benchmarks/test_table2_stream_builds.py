"""Table II: STREAM build-configuration table."""

from repro.toolchain.flags import table2


def test_table2_stream_builds(benchmark):
    t = benchmark(table2)
    text = t.render()
    assert "-Kzfill=100" in text
    assert "-O3 -xHost" in text
    assert len(t.rows) == 4
