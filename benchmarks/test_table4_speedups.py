"""Table IV: the full speedup matrix of CTE-Arm vs MareNostrum 4."""

from repro.analysis.speedup import table4_matrix


def test_table4_speedups(benchmark):
    matrix = benchmark(table4_matrix)
    by = {(c.application, c.n_nodes): c for cells in matrix.values()
          for c in cells}
    # paper anchors
    assert abs(by[("LINPACK", 1)].speedup - 1.25) < 0.04
    assert abs(by[("LINPACK", 192)].speedup - 1.40) < 0.04
    assert abs(by[("HPCG", 192)].speedup - 3.24) < 0.20
    assert by[("Alya", 1)].speedup is None          # NP
    assert by[("NEMO", 1)].speedup is None          # NP
    assert by[("OpenIFS", 16)].speedup is None      # NP (TC0511)
    assert abs(by[("Alya", 16)].speedup - 0.30) < 0.04
    assert abs(by[("NEMO", 16)].speedup - 0.56) < 0.08
    # the global shape: synthetics > 1, applications < 1
    for row, cells in matrix.items():
        for cell in cells:
            if cell.speedup is None:
                continue
            assert (cell.speedup > 1) == (row in ("LINPACK", "HPCG"))
