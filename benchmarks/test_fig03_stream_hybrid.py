"""Fig. 3: hybrid MPI+OpenMP STREAM Triad."""

from repro.bench.stream_bench import best_point, fig3_data


def test_fig03_stream_hybrid(benchmark):
    data = benchmark(fig3_data)
    arm_f = best_point([p for p in data
                        if p.cluster == "CTE-Arm" and p.language == "fortran"])
    arm_c = best_point([p for p in data
                        if p.cluster == "CTE-Arm" and p.language == "c"])
    assert abs(arm_f.bandwidth / 1e9 - 862.6) < 5.0   # 84 % of peak
    assert abs(arm_c.bandwidth / 1e9 - 421.1) < 5.0   # the unexplained C gap
    assert arm_f.label == "4x12"
