"""Fig. 9: Alya Assembly phase — the worst-case vectorization gap."""

from repro.apps import AlyaModel


def test_fig09_alya_assembly(benchmark, arm, mn4):
    app = AlyaModel()

    def phase_times():
        a = app.time_step(arm, 12).phase_seconds["assembly"]
        m = app.time_step(mn4, 12).phase_seconds["assembly"]
        a62 = app.time_step(arm, 62).phase_seconds["assembly"]
        return a, m, a62

    a, m, a62 = benchmark(phase_times)
    assert 4.5 < a / m < 5.4        # paper: 4.96x
    assert a62 <= m * 1.1           # ~62 CTE-Arm nodes match 12 MN4 nodes
