"""Fig. 7: HPCG vanilla/optimized (model) and the real MG-preconditioned CG."""

from repro.bench.hpcg import fig7_data
from repro.kernels.multigrid import hpcg_solve


def test_fig07_hpcg_campaign(benchmark):
    pts = benchmark(fig7_data)

    def get(cluster, version, nodes):
        return next(p for p in pts if p.cluster == cluster
                    and p.version == version and p.n_nodes == nodes)

    a1 = get("CTE-Arm", "optimized", 1)
    m1 = get("MareNostrum 4", "optimized", 1)
    assert abs(a1.percent_of_peak - 2.91) < 0.05
    assert abs(a1.gflops / m1.gflops - 2.5) < 0.2


def test_fig07_real_hpcg_kernel(benchmark):
    result, flops = benchmark(hpcg_solve, 8, 8, 8, levels=2, tol=1e-6,
                              max_iter=40)
    assert result.converged
    assert flops > 0
