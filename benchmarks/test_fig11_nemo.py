"""Fig. 11: NEMO BENCH/ORCA1 strong scaling with the >= 128-node flattening."""

from repro.analysis.scaling import flattening_point
from repro.apps import NemoModel


def test_fig11_nemo_scaling(benchmark, arm, mn4):
    app = NemoModel()
    arm_nodes = [8, 16, 32, 64, 128, 192]

    def sweep():
        arm_t = {n: app.time_step(arm, n).total for n in arm_nodes}
        mn4_t = {n: app.time_step(mn4, n).total for n in (8, 16, 24)}
        return arm_t, mn4_t

    arm_t, mn4_t = benchmark(sweep)
    assert 1.6 < arm_t[8] / mn4_t[8] < 1.95   # paper: 1.70-1.79x
    flat = flattening_point(arm_nodes, [arm_t[n] for n in arm_nodes])
    assert flat is not None and flat >= 96    # flattens around 128
