"""Fig. 1: the six FPU µKernel variants on both machines, plus the real
host FMA kernel."""

from repro.bench.fpu_ukernel import fig1_data
from repro.kernels.fpu import fma_chain


def test_fig01_fpu_campaign(benchmark):
    data = benchmark(fig1_data)
    assert len(data) == 12
    assert all(r.percent_of_peak > 95 for r in data)
    arm_dp = next(r for r in data if r.cluster == "CTE-Arm"
                  and r.mode.value == "vector" and r.dtype.name == "DOUBLE")
    assert 69.0 < arm_dp.sustained_flops / 1e9 < 70.4


def test_fig01_real_fma_kernel(benchmark):
    """The actual numpy FMA chain the µKernel model is validated against."""
    acc, flops = benchmark(fma_chain, 2048, 50)
    assert flops == 2 * 2048 * 50 * 8
