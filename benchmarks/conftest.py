"""Benchmark-suite configuration.

Each benchmark regenerates one paper table/figure through the models and
asserts its headline shape, so ``pytest benchmarks/ --benchmark-only``
doubles as the full reproduction run with timings.
"""

import pytest


@pytest.fixture(scope="session")
def arm():
    from repro.machine import cte_arm

    return cte_arm()


@pytest.fixture(scope="session")
def mn4():
    from repro.machine import marenostrum4

    return marenostrum4(192)
