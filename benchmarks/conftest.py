"""Benchmark-suite configuration.

Each benchmark regenerates one paper table/figure through the models and
asserts its headline shape, so ``pytest benchmarks/ --benchmark-only``
doubles as the full reproduction run with timings.

The suite does not *require* pytest-benchmark: without the plugin a
minimal stand-in fixture runs each benchmarked callable once and returns
its result, so the correctness assertions still execute (no timing
statistics are collected).
"""

import importlib.util
import os

import pytest

if (
    importlib.util.find_spec("pytest_benchmark") is None
    or os.environ.get("PYTEST_DISABLE_PLUGIN_AUTOLOAD")
):

    @pytest.fixture
    def benchmark():
        """Plugin-free stand-in: call the function once, return its result."""

        def run(fn, *args, **kwargs):
            return fn(*args, **kwargs)

        return run


@pytest.fixture(scope="session")
def arm():
    from repro.machine import cte_arm

    return cte_arm()


@pytest.fixture(scope="session")
def mn4():
    from repro.machine import marenostrum4

    return marenostrum4(192)
