"""Table I: hardware-configuration generation from the presets."""

from repro.machine.presets import table1


def test_table1_config(benchmark):
    t = benchmark(table1)
    text = t.render()
    assert "70.40" in text and "67.20" in text
    assert "1024 GB/s" in text and "256 GB/s" in text
