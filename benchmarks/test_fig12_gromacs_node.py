"""Fig. 12: Gromacs single-node sweep, plus the real MD kernel."""

import numpy as np

from repro.apps import GromacsModel
from repro.kernels.md import MDSystem, velocity_verlet


def test_fig12_gromacs_single_node(benchmark, arm, mn4):
    app = GromacsModel()

    def sweep():
        return dict(app.single_node_sweep(arm)), dict(app.single_node_sweep(mn4))

    arm_d, mn4_d = benchmark(sweep)
    assert 2.7 < arm_d[6] / mn4_d[6] < 3.7     # paper: 3.48x at 6 cores
    assert 2.6 < arm_d[48] / mn4_d[48] < 3.6   # paper: 3.10x full node


def test_fig12_real_md_kernel(benchmark):
    """The actual reaction-field MD step (cell lists, velocity Verlet)."""
    system = MDSystem.lattice(6, seed=1)

    def steps():
        return velocity_verlet(system, dt=0.002, steps=2)

    hist = benchmark.pedantic(steps, rounds=1, iterations=1)
    e = np.array(hist["total"])
    assert np.all(np.isfinite(e))
