"""Fig. 16: WRF Iberia 4 km, IO enabled vs disabled."""

from repro.apps import WRFModel


def test_fig16_wrf(benchmark, arm, mn4):
    io_on = WRFModel(io_enabled=True)
    io_off = WRFModel(io_enabled=False)

    def sweep():
        return {
            (c.name, n, io): app.elapsed_seconds(c, n)
            for c in (arm, mn4)
            for n in (1, 16, 64)
            for app, io in ((io_on, "on"), (io_off, "off"))
        }

    v = benchmark(sweep)
    r1 = v[("CTE-Arm", 1, "on")] / v[("MareNostrum 4", 1, "on")]
    r64 = v[("CTE-Arm", 64, "on")] / v[("MareNostrum 4", 64, "on")]
    assert 1.95 < r1 < 2.45    # paper: 2.16x
    assert 1.85 < r64 < 2.50   # paper: 2.23x
    for c in ("CTE-Arm", "MareNostrum 4"):
        for n in (1, 16, 64):
            assert v[(c, n, "on")] / v[(c, n, "off")] < 1.10  # IO ~free
