"""Weak-scaling support in the application models."""

import pytest

from repro.apps import AlyaModel, NemoModel
from repro.util.errors import ConfigurationError


class TestWeakScaling:
    def test_flat_time_under_weak_scaling(self, arm):
        app = NemoModel()
        points = app.weak_scaling(arm, [8, 32, 128], base_nodes=8)
        times = [p.seconds_per_step for p in points]
        assert max(times) / min(times) < 1.25

    def test_base_point_equals_strong_scaling_point(self, arm):
        app = NemoModel()
        weak = app.weak_scaling(arm, [8], base_nodes=8)[0]
        strong = app.time_step(arm, 8).total
        assert weak.seconds_per_step == pytest.approx(strong)

    def test_strong_scaling_beats_weak_at_high_nodes(self, arm):
        """At 128 nodes the strong-scaled (fixed) problem is much smaller
        per rank than the weak-scaled one."""
        app = NemoModel()
        weak = app.weak_scaling(arm, [128], base_nodes=8)[0].seconds_per_step
        strong = app.time_step(arm, 128).total
        assert strong < 0.5 * weak

    def test_work_scale_multiplies_compute(self, arm):
        app = AlyaModel()
        t1 = app.time_step(arm, 16).phase_compute["assembly"]
        t2 = app.time_step(arm, 16, work_scale=2.0).phase_compute["assembly"]
        assert t2 == pytest.approx(2.0 * t1, rel=0.01)

    def test_comm_scales_sublinearly(self, arm):
        app = AlyaModel()
        c1 = app.time_step(arm, 16).phase_comm["solver"]
        c2 = app.time_step(arm, 16, work_scale=8.0).phase_comm["solver"]
        # message sizes grow with the 2/3 power: 8^(2/3) = 4 < 8.
        assert c1 < c2 < 6.0 * c1

    def test_invalid_scale_rejected(self, arm):
        with pytest.raises(ConfigurationError):
            AlyaModel().time_step(arm, 16, work_scale=-1.0)

    def test_below_base_skipped(self, arm):
        app = NemoModel()
        points = app.weak_scaling(arm, [4, 8, 16], base_nodes=8)
        assert [p.n_nodes for p in points] == [8, 16]
