"""Unit constants, formatting, and size parsing."""

import pytest

from repro.util.units import (
    GB,
    GIB,
    KB,
    KIB,
    MB,
    MIB,
    format_bandwidth,
    format_bytes,
    format_flops,
    format_time,
    parse_size,
)


class TestConstants:
    def test_decimal_vs_binary(self):
        assert KB == 1000 and KIB == 1024
        assert MB == 10**6 and MIB == 2**20
        assert GB == 10**9 and GIB == 2**30

    def test_binary_strictly_larger(self):
        assert KIB > KB and MIB > MB and GIB > GB


class TestFormatting:
    def test_format_bytes_binary(self):
        assert format_bytes(64 * KIB) == "64.00 KiB"
        assert format_bytes(32 * MIB) == "32.00 MiB"

    def test_format_bytes_decimal(self):
        assert format_bytes(96 * GB, binary=False) == "96.00 GB"

    def test_format_bytes_small(self):
        assert format_bytes(512) == "512.00 B"

    def test_format_flops(self):
        assert format_flops(70.4e9) == "70.40 GFlop/s"
        assert format_flops(3.3792e12) == "3.38 TFlop/s"

    def test_format_bandwidth(self):
        assert format_bandwidth(6.8e9) == "6.8 GB/s"
        assert format_bandwidth(1024e9) == "1.0 TB/s"

    def test_format_time_prefixes(self):
        assert format_time(1.5) == "1.500 s"
        assert format_time(2.5e-3) == "2.500 ms"
        assert format_time(900e-9) == "900.000 ns"
        assert format_time(0) == "0 s"


class TestParseSize:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("256", 256),
            ("1kb", 1000),
            ("64KiB", 64 * 1024),
            ("32 GB", 32 * 10**9),
            ("2M", 2 * 2**20),
            ("1.5k", int(1.5 * 1024)),
        ],
    )
    def test_roundtrip(self, text, expected):
        assert parse_size(text) == expected

    def test_rejects_garbage_suffix(self):
        with pytest.raises(ValueError):
            parse_size("12xyz")

    def test_rejects_no_number(self):
        with pytest.raises(ValueError):
            parse_size("GB")
