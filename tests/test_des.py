"""Discrete-event engine: ordering, processes, deadlock, resources, channels."""

import pytest

from repro.des import AllOf, Channel, Engine, Resource
from repro.util.errors import DeadlockError, SimulationError


class TestEngineBasics:
    def test_clock_starts_at_zero(self):
        assert Engine().now == 0.0

    def test_timeout_advances_clock(self):
        eng = Engine()

        def proc():
            yield eng.timeout(2.5)

        eng.process(proc())
        assert eng.run() == 2.5

    def test_plain_float_yield_is_timeout(self):
        eng = Engine()

        def proc():
            yield 1.25
            yield 0.75

        eng.process(proc())
        assert eng.run() == 2.0

    def test_negative_timeout_rejected(self):
        eng = Engine()
        with pytest.raises(SimulationError):
            eng.timeout(-1.0)

    def test_simultaneous_events_fifo(self):
        eng = Engine()
        order = []

        def proc(i):
            yield eng.timeout(1.0)
            order.append(i)

        for i in range(5):
            eng.process(proc(i))
        eng.run()
        assert order == [0, 1, 2, 3, 4]

    def test_run_until(self):
        eng = Engine()

        def proc():
            yield eng.timeout(10.0)

        eng.process(proc())
        assert eng.run(until=3.0) == 3.0
        assert eng.now == 3.0

    def test_process_return_value(self):
        eng = Engine()

        def proc():
            yield eng.timeout(1.0)
            return 42

        p = eng.process(proc())
        eng.run()
        assert p.value == 42

    def test_join_process(self):
        eng = Engine()

        def child():
            yield eng.timeout(2.0)
            return "done"

        def parent():
            result = yield eng.process(child())
            return (result, eng.now)

        p = eng.process(parent())
        eng.run()
        assert p.value == ("done", 2.0)

    def test_yield_garbage_raises(self):
        eng = Engine()

        def proc():
            yield "nonsense"

        eng.process(proc())
        with pytest.raises(SimulationError):
            eng.run()

    def test_exception_propagates_when_unwatched(self):
        eng = Engine()

        def proc():
            yield eng.timeout(1.0)
            raise ValueError("boom")

        eng.process(proc())
        with pytest.raises(ValueError):
            eng.run()

    def test_exception_delivered_to_joiner(self):
        eng = Engine()

        def child():
            yield eng.timeout(1.0)
            raise ValueError("child boom")

        def parent():
            try:
                yield eng.process(child())
            except ValueError as e:
                return str(e)

        p = eng.process(parent())
        eng.run()
        assert p.value == "child boom"


class TestEvents:
    def test_event_value_before_trigger_raises(self):
        eng = Engine()
        ev = eng.event()
        with pytest.raises(SimulationError):
            _ = ev.value

    def test_double_trigger_rejected(self):
        eng = Engine()
        ev = eng.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)

    def test_wait_on_already_resolved_event(self):
        """A late waiter on a resolved event must not sleep forever."""
        eng = Engine()
        ev = eng.event()
        ev.succeed("early")
        got = []

        def late():
            yield eng.timeout(5.0)
            value = yield ev
            got.append((value, eng.now))

        eng.process(late())
        eng.run()
        assert got == [("early", 5.0)]


class TestDeadlock:
    def test_blocked_process_detected(self):
        eng = Engine()
        ch = Channel(eng)

        def stuck():
            yield ch.get(0, 0)

        eng.process(stuck())
        with pytest.raises(DeadlockError):
            eng.run()

    def test_matched_processes_not_deadlocked(self):
        eng = Engine()
        ch = Channel(eng)

        def sender():
            yield eng.timeout(1.0)
            ch.put(0, 0, "hi")

        def receiver():
            msg = yield ch.get(0, 0)
            return msg

        eng.process(sender())
        r = eng.process(receiver())
        eng.run()
        assert r.value == "hi"


class TestResource:
    def test_serializes_capacity_one(self):
        eng = Engine()
        res = Resource(eng, 1)
        times = []

        def worker():
            yield res.acquire()
            times.append(eng.now)
            yield eng.timeout(1.0)
            res.release()

        for _ in range(3):
            eng.process(worker())
        eng.run()
        assert times == [0.0, 1.0, 2.0]

    def test_capacity_two_overlaps(self):
        eng = Engine()
        res = Resource(eng, 2)
        times = []

        def worker():
            yield res.acquire()
            times.append(eng.now)
            yield eng.timeout(1.0)
            res.release()

        for _ in range(4):
            eng.process(worker())
        eng.run()
        assert times == [0.0, 0.0, 1.0, 1.0]

    def test_release_idle_rejected(self):
        eng = Engine()
        with pytest.raises(SimulationError):
            Resource(eng, 1).release()

    def test_invalid_capacity(self):
        with pytest.raises(SimulationError):
            Resource(Engine(), 0)


class TestChannel:
    def test_fifo_per_source_tag(self):
        eng = Engine()
        ch = Channel(eng)
        ch.put(1, 0, "a")
        ch.put(1, 0, "b")
        got = []

        def receiver():
            got.append((yield ch.get(1, 0)))
            got.append((yield ch.get(1, 0)))

        eng.process(receiver())
        eng.run()
        assert got == ["a", "b"]

    def test_tag_matching(self):
        eng = Engine()
        ch = Channel(eng)
        ch.put(1, 5, "tagged5")
        ch.put(1, 7, "tagged7")
        got = []

        def receiver():
            got.append((yield ch.get(1, 7)))
            got.append((yield ch.get(1, 5)))

        eng.process(receiver())
        eng.run()
        assert got == ["tagged7", "tagged5"]

    def test_any_tag_wildcard(self):
        eng = Engine()
        ch = Channel(eng)
        ch.put(2, 99, "whatever")
        got = []

        def receiver():
            got.append((yield ch.get(2, None)))

        eng.process(receiver())
        eng.run()
        assert got == ["whatever"]

    def test_pending_count(self):
        eng = Engine()
        ch = Channel(eng)
        ch.put(0, 0, "x")
        ch.put(0, 1, "y")
        assert ch.pending == 2


class TestAllOf:
    def test_waits_for_all(self):
        eng = Engine()
        t1, t2 = eng.timeout(1.0, "a"), eng.timeout(3.0, "b")

        def waiter():
            values = yield AllOf(eng, [t1, t2])
            return (values, eng.now)

        p = eng.process(waiter())
        eng.run()
        assert p.value == (["a", "b"], 3.0)

    def test_empty_completes_immediately(self):
        eng = Engine()

        def waiter():
            values = yield AllOf(eng, [])
            return values

        p = eng.process(waiter())
        eng.run()
        assert p.value == []
