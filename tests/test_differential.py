"""Differential suite: the analytic collective fast path against the
fully simulated DES schedule, including under static network faults, plus
the gating that keeps the fast path off whenever it could diverge.

For bulk-synchronous programs (every rank enters each collective at the
same virtual time — all ``ProgramSpec`` collective-only programs are, by
construction) the closed-form recurrences reproduce the DES schedule
*exactly*, so elapsed times are compared at ``rel=1e-9``, not the loose
cross-validation tolerance.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.machine import cte_arm
from repro.network.faults import FaultModel
from repro.resilience import FaultSchedule, LinkDegrade, ResiliencePolicy
from repro.simmpi import RankMapping, World

from tests.strategies import ProgramSpec, program_specs

_CLUSTER = cte_arm(16)

REL = 1e-9


def _mapping(n_ranks: int) -> RankMapping:
    rpn = min(2, n_ranks)
    return RankMapping(_CLUSTER, n_nodes=n_ranks // rpn, ranks_per_node=rpn)


def _differential(spec: ProgramSpec, *, faults: FaultModel | None = None,
                  rel: float = REL) -> None:
    mapping = _mapping(spec.n_ranks)
    results = []
    for fast in (False, True):
        world = World(mapping, fast_collectives=fast, trace=False)
        if faults is not None:
            world.network.faults.recv_factors.update(faults.recv_factors)
            world.network.faults.send_factors.update(faults.send_factors)
        results.append(world.run(spec.build()))
    ref, got = results
    assert got.rank_results == ref.rank_results
    assert got.elapsed == pytest.approx(ref.elapsed, rel=rel)


class TestFixedPrograms:
    """Hand-picked bulk-synchronous programs, exact agreement."""

    @pytest.mark.parametrize("n_ranks", [2, 4, 8])
    def test_mixed_collectives(self, n_ranks):
        spec = ProgramSpec(n_ranks, (
            ("allreduce", 4096),
            ("barrier", 0),
            ("bcast", 1),
            ("compute", 10),
            ("allgather", 65536),
            ("reduce", 0),
            ("alltoall", 262144),
        ))
        _differential(spec)

    def test_repeated_allreduce(self):
        spec = ProgramSpec(8, (("allreduce", 262144),) * 6)
        _differential(spec)


class TestStaticFaults:
    """A statically degraded (but reachable) link must slow both paths by
    the same amount — the fault factor flows through the one shared
    ``NetworkModel.p2p_time``."""

    @pytest.mark.parametrize("factor", [0.4, 0.75])
    def test_weak_receiver(self, factor):
        spec = ProgramSpec(8, (
            ("allreduce", 262144), ("allgather", 65536), ("barrier", 0),
        ))
        _differential(
            spec, faults=FaultModel().degrade_receiver(2, factor)
        )

    def test_weak_sender(self):
        spec = ProgramSpec(4, (("alltoall", 262144), ("allreduce", 4096)))
        _differential(spec, faults=FaultModel().degrade_sender(1, 0.5))

    def test_fault_actually_slows(self):
        spec = ProgramSpec(8, (("allreduce", 262144),))
        mapping = _mapping(8)
        healthy = World(mapping, trace=False).run(spec.build())
        faulty_world = World(mapping, trace=False)
        faulty_world.network.faults.degrade_receiver(2, 0.25)
        faulty = faulty_world.run(spec.build())
        assert faulty.elapsed > healthy.elapsed


@settings(max_examples=30, deadline=None)
@given(program_specs(collective_only=True))
def test_random_programs_agree(spec):
    _differential(spec)


@settings(max_examples=15, deadline=None)
@given(program_specs(collective_only=True, max_ops=4))
def test_random_programs_agree_under_faults(spec):
    _differential(spec, faults=FaultModel().degrade_receiver(0, 0.5))


class TestFastcollGating:
    """The fast path must refuse whenever it could diverge from the DES."""

    def test_fault_schedule_disables_fastcoll(self):
        schedule = FaultSchedule([LinkDegrade(0.001, node=1, factor=0.5)])
        world = World(_mapping(4), fast_collectives=True,
                      fault_schedule=schedule)
        assert world._use_fastcoll() is False

    def test_policy_disables_fastcoll(self):
        world = World(_mapping(4), fast_collectives=True,
                      resilience=ResiliencePolicy())
        assert world._use_fastcoll() is False

    def test_static_dead_link_disables_fastcoll(self):
        world = World(_mapping(4), fast_collectives=True)
        assert world._use_fastcoll() is True
        world.network.faults.degrade_receiver(1, 0.0)
        assert world._use_fastcoll() is False
        world.network.faults.restore(1)
        assert world._use_fastcoll() is True

    def test_fallback_matches_simulated_path(self):
        """With a schedule attached, a fast_collectives=True world takes
        the DES path and agrees bit-for-bit with fast_collectives=False."""
        spec = ProgramSpec(4, (("allreduce", 262144), ("barrier", 0)))
        schedule = FaultSchedule(
            [LinkDegrade(1e-6, node=1, factor=0.3, direction="both")]
        )
        runs = []
        for fast in (False, True):
            world = World(_mapping(4), fast_collectives=fast, trace=False,
                          fault_schedule=schedule)
            runs.append(world.run(spec.build()))
        ref, got = runs
        assert got.rank_results == ref.rank_results
        assert got.elapsed == ref.elapsed
