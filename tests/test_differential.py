"""Differential suite: the analytic collective fast path against the
fully simulated DES schedule, including under static network faults, plus
the gating that keeps the fast path off whenever it could diverge.

For bulk-synchronous programs (every rank enters each collective at the
same virtual time — all ``ProgramSpec`` collective-only programs are, by
construction) the closed-form recurrences reproduce the DES schedule
*exactly*, so elapsed times are compared at ``rel=1e-9``, not the loose
cross-validation tolerance.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.machine import cte_arm, marenostrum4
from repro.network.faults import FaultModel
from repro.resilience import FaultSchedule, LinkDegrade, ResiliencePolicy
from repro.simmpi import RankMapping, World

from tests.strategies import ProgramSpec, ir_programs, program_specs

_CLUSTER = cte_arm(16)

REL = 1e-9


def _mapping(n_ranks: int) -> RankMapping:
    rpn = min(2, n_ranks)
    return RankMapping(_CLUSTER, n_nodes=n_ranks // rpn, ranks_per_node=rpn)


def _differential(spec: ProgramSpec, *, faults: FaultModel | None = None,
                  rel: float = REL) -> None:
    mapping = _mapping(spec.n_ranks)
    results = []
    for fast in (False, True):
        world = World(mapping, fast_collectives=fast, trace=False)
        if faults is not None:
            world.network.faults.recv_factors.update(faults.recv_factors)
            world.network.faults.send_factors.update(faults.send_factors)
        results.append(world.run(spec.build()))
    ref, got = results
    assert got.rank_results == ref.rank_results
    assert got.elapsed == pytest.approx(ref.elapsed, rel=rel)


class TestFixedPrograms:
    """Hand-picked bulk-synchronous programs, exact agreement."""

    @pytest.mark.parametrize("n_ranks", [2, 4, 8])
    def test_mixed_collectives(self, n_ranks):
        spec = ProgramSpec(n_ranks, (
            ("allreduce", 4096),
            ("barrier", 0),
            ("bcast", 1),
            ("compute", 10),
            ("allgather", 65536),
            ("reduce", 0),
            ("alltoall", 262144),
        ))
        _differential(spec)

    def test_repeated_allreduce(self):
        spec = ProgramSpec(8, (("allreduce", 262144),) * 6)
        _differential(spec)


class TestStaticFaults:
    """A statically degraded (but reachable) link must slow both paths by
    the same amount — the fault factor flows through the one shared
    ``NetworkModel.p2p_time``."""

    @pytest.mark.parametrize("factor", [0.4, 0.75])
    def test_weak_receiver(self, factor):
        spec = ProgramSpec(8, (
            ("allreduce", 262144), ("allgather", 65536), ("barrier", 0),
        ))
        _differential(
            spec, faults=FaultModel().degrade_receiver(2, factor)
        )

    def test_weak_sender(self):
        spec = ProgramSpec(4, (("alltoall", 262144), ("allreduce", 4096)))
        _differential(spec, faults=FaultModel().degrade_sender(1, 0.5))

    def test_fault_actually_slows(self):
        spec = ProgramSpec(8, (("allreduce", 262144),))
        mapping = _mapping(8)
        healthy = World(mapping, trace=False).run(spec.build())
        faulty_world = World(mapping, trace=False)
        faulty_world.network.faults.degrade_receiver(2, 0.25)
        faulty = faulty_world.run(spec.build())
        assert faulty.elapsed > healthy.elapsed


@settings(max_examples=30, deadline=None)
@given(program_specs(collective_only=True))
def test_random_programs_agree(spec):
    _differential(spec)


@settings(max_examples=15, deadline=None)
@given(program_specs(collective_only=True, max_ops=4))
def test_random_programs_agree_under_faults(spec):
    _differential(spec, faults=FaultModel().degrade_receiver(0, 0.5))


class TestCrossBackend:
    """Every app and bench IR program under all three pluggable backends
    at small scale (4 ranks — power of two, so the fastcoll allreduce
    recurrence is exact).

    fastcoll must reproduce the DES schedule at ``rel=1e-9`` on these
    bulk-synchronous programs; the analytic backend must land within the
    per-workload bands documented in docs/IR.md (the gap is scheduling
    fidelity: the DES grid decomposition sees fewer halo neighbors at tiny
    rank counts, and sendrecv pairs overlap where the analytic model
    charges a full pairwise exchange).
    """

    #: analytic/DES agreement bands at the 4-rank test scale (docs/IR.md).
    APP_BAND = (0.90, 1.25)
    BENCH_BANDS = {
        "stream": (0.95, 1.05),
        "hpl": (0.90, 1.25),
        "hpcg": (0.60, 2.00),
        "osu": (0.50, 1.10),
    }

    def _backends(self):
        from repro.ir import AnalyticBackend, DESBackend, FastCollBackend

        return AnalyticBackend(), FastCollBackend(), DESBackend()

    def _assert_agreement(self, program, cluster, n_nodes, band, *,
                          mapping=None, binary=None):
        analytic, fastcoll, des = self._backends()
        kwargs = dict(mapping=mapping, binary=binary, check_memory=False)
        r_des = des.run(program, cluster, n_nodes, **kwargs)
        r_fast = fastcoll.run(program, cluster, n_nodes, **kwargs)
        r_an = analytic.run(program, cluster, n_nodes, **kwargs)
        assert r_des.elapsed > 0
        assert r_fast.elapsed == pytest.approx(r_des.elapsed, rel=REL)
        lo, hi = band
        ratio = r_an.elapsed / r_des.elapsed
        assert lo < ratio < hi, (
            f"{program.name}: analytic/DES ratio {ratio:.3f} "
            f"outside documented band ({lo}, {hi})"
        )
        # every phase the program declares shows up in the DES trace
        for name in program.phase_names():
            assert r_des.phase_seconds[name] >= 0.0

    @pytest.mark.parametrize("make_cluster", [cte_arm, marenostrum4],
                             ids=["arm", "mn4"])
    @pytest.mark.parametrize(
        "app_name", ["alya", "nemo", "gromacs", "openifs", "wrf"])
    def test_apps_all_backends(self, make_cluster, app_name):
        from repro.apps import get_app

        cluster = make_cluster(4)
        app = get_app(app_name)
        mapping = RankMapping(cluster, n_nodes=2, ranks_per_node=2)
        program = app.program(mapping)
        binary = app.build(cluster)
        self._assert_agreement(program, cluster, 2, self.APP_BAND,
                               mapping=mapping, binary=binary)

    def test_stream_all_backends(self):
        from repro.bench.stream_bench import ir_program

        cluster = cte_arm(4)
        self._assert_agreement(ir_program(cluster, elements=1_000_000,
                                          iterations=2),
                               cluster, 1, self.BENCH_BANDS["stream"])

    def test_linpack_all_backends(self):
        from repro.bench.linpack import ir_program

        cluster = cte_arm(4)
        mapping = RankMapping(cluster, n_nodes=2, ranks_per_node=2)
        self._assert_agreement(ir_program(cluster, 2, n=2400),
                               cluster, 2, self.BENCH_BANDS["hpl"],
                               mapping=mapping)

    def test_hpcg_all_backends(self):
        from repro.bench.hpcg import ir_program

        cluster = cte_arm(4)
        mapping = RankMapping(cluster, n_nodes=2, ranks_per_node=2)
        self._assert_agreement(ir_program(cluster, 1, local_grid=(4, 6, 6),
                                          iterations=2),
                               cluster, 2, self.BENCH_BANDS["hpcg"],
                               mapping=mapping)

    def test_osu_all_backends(self):
        from repro.bench.osu import ir_program

        cluster = cte_arm(4)
        self._assert_agreement(ir_program(size=1 << 16, iterations=3),
                               cluster, 4, self.BENCH_BANDS["osu"])


@settings(max_examples=20, deadline=None)
@given(ir_programs())
def test_random_ir_programs_fastcoll_exact(program):
    """Random bulk-synchronous IR programs: fastcoll ≡ DES at 1e-9."""
    from repro.ir import DESBackend, FastCollBackend

    cluster = cte_arm(4)
    mapping = RankMapping(cluster, n_nodes=2, ranks_per_node=2)
    kwargs = dict(mapping=mapping, check_memory=False, trace=False)
    r_des = DESBackend().run(program, cluster, 2, **kwargs)
    r_fast = FastCollBackend().run(program, cluster, 2, **kwargs)
    assert r_fast.elapsed == pytest.approx(r_des.elapsed, rel=REL)


class TestFastcollGating:
    """The fast path must refuse whenever it could diverge from the DES."""

    def test_fault_schedule_disables_fastcoll(self):
        schedule = FaultSchedule([LinkDegrade(0.001, node=1, factor=0.5)])
        world = World(_mapping(4), fast_collectives=True,
                      fault_schedule=schedule)
        assert world._use_fastcoll() is False

    def test_policy_disables_fastcoll(self):
        world = World(_mapping(4), fast_collectives=True,
                      resilience=ResiliencePolicy())
        assert world._use_fastcoll() is False

    def test_static_dead_link_disables_fastcoll(self):
        world = World(_mapping(4), fast_collectives=True)
        assert world._use_fastcoll() is True
        world.network.faults.degrade_receiver(1, 0.0)
        assert world._use_fastcoll() is False
        world.network.faults.restore(1)
        assert world._use_fastcoll() is True

    def test_fallback_matches_simulated_path(self):
        """With a schedule attached, a fast_collectives=True world takes
        the DES path and agrees bit-for-bit with fast_collectives=False."""
        spec = ProgramSpec(4, (("allreduce", 262144), ("barrier", 0)))
        schedule = FaultSchedule(
            [LinkDegrade(1e-6, node=1, factor=0.3, direction="both")]
        )
        runs = []
        for fast in (False, True):
            world = World(_mapping(4), fast_collectives=fast, trace=False,
                          fault_schedule=schedule)
            runs.append(world.run(spec.build()))
        ref, got = runs
        assert got.rank_results == ref.rank_results
        assert got.elapsed == ref.elapsed
