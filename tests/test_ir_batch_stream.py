"""Streaming batched evaluation: bit-identity, budgets, pooling.

The contracts under test are ISSUE 10's tentpole guarantees:

* ``run_batch_stream`` is bit-identical to one big ``run_batch`` for
  ANY chunk size and ANY worker count;
* ``run_override_columns`` lanes are bit-identical to the equivalent
  scalar-``overrides`` jobs, for every override key and both pricing
  models;
* chunk sizing honors the memory budget (monotone, bounded, positive);
* override validation reports the sorted allowed-key set, and an empty
  overrides dict is digest-equivalent to ``None``;
* ``PersistentPool.imap`` streams in input order and propagates errors.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import get_app
from repro.ir.batch import (
    DEFAULT_STREAM_BUDGET,
    BatchJob,
    OVERRIDE_KEYS,
    clear_caches,
    compile_tape,
    shared_batch_backend,
    stream_chunk_points,
    validate_overrides,
)
from repro.machine.presets import cte_arm
from repro.util.errors import ConfigurationError

_ARM = cte_arm(64)


def _assert_results_equal(a, b):
    assert a.phase_seconds == b.phase_seconds
    assert a.phase_compute == b.phase_compute
    assert a.phase_comm == b.phase_comm
    assert a.phase_flops_time == b.phase_flops_time
    assert a.phase_bytes_time == b.phase_bytes_time
    assert a.elapsed == b.elapsed
    assert a.n_ranks == b.n_ranks


def _nemo_jobs(n_jobs, pricing="roofline"):
    app = get_app("nemo")
    mapping = app.mapping(_ARM, 16)
    program = app.program(mapping)
    binary = app.build(_ARM)
    vals = (1.0, 0.8, 1.2, 0.65, 1.45)
    return [
        BatchJob(
            program, _ARM, 16, mapping=mapping, binary=binary,
            check_memory=False, pricing=pricing,
            overrides={
                "comm_scale": vals[i % 5],
                "bandwidth_scale": vals[(i // 5) % 5],
                "rate_scale": vals[(i // 25) % 5],
            },
        )
        for i in range(n_jobs)
    ]


class TestRunBatchStream:
    @pytest.mark.parametrize("chunk", [1, 3, 7, 50, 500])
    def test_bit_identical_any_chunk_size(self, chunk):
        backend = shared_batch_backend()
        jobs = _nemo_jobs(50)
        direct = backend.run_batch(jobs)
        clear_caches()
        streamed = list(backend.run_batch_stream(iter(jobs),
                                                 chunk_points=chunk))
        assert len(streamed) == len(direct)
        for a, b in zip(direct, streamed):
            _assert_results_equal(a, b)

    @pytest.mark.parametrize("workers", [2, 3])
    def test_bit_identical_any_worker_count(self, workers, monkeypatch):
        monkeypatch.setenv("REPRO_POOL_MIN_SECONDS", "0")
        backend = shared_batch_backend()
        jobs = _nemo_jobs(60)
        direct = backend.run_batch(jobs)
        clear_caches()
        streamed = list(backend.run_batch_stream(
            iter(jobs), chunk_points=7, workers=workers))
        assert len(streamed) == len(direct)
        for a, b in zip(direct, streamed):
            _assert_results_equal(a, b)

    def test_budget_derived_chunking_matches(self):
        backend = shared_batch_backend()
        jobs = _nemo_jobs(40)
        direct = backend.run_batch(jobs)
        clear_caches()
        # a tiny budget forces many small chunks; results must not move
        streamed = list(backend.run_batch_stream(
            iter(jobs), memory_budget_bytes=1 << 16))
        for a, b in zip(direct, streamed):
            _assert_results_equal(a, b)

    def test_empty_stream(self):
        backend = shared_batch_backend()
        assert list(backend.run_batch_stream(iter([]))) == []

    def test_bad_chunk_points(self):
        backend = shared_batch_backend()
        with pytest.raises(ConfigurationError, match="chunk_points"):
            list(backend.run_batch_stream(iter(_nemo_jobs(1)),
                                          chunk_points=0))


class TestRunOverrideColumns:
    @pytest.mark.parametrize("pricing", ["roofline", "ecm"])
    def test_lanes_match_scalar_jobs(self, pricing):
        backend = shared_batch_backend()
        jobs = _nemo_jobs(75, pricing=pricing)
        direct = backend.run_batch(jobs)
        clear_caches()
        base = BatchJob(jobs[0].program, _ARM, 16,
                        mapping=jobs[0].mapping, binary=jobs[0].binary,
                        check_memory=False, pricing=pricing)
        columns = {
            key: np.asarray([job.overrides[key] for job in jobs])
            for key in ("comm_scale", "bandwidth_scale", "rate_scale")
        }
        chunks = list(backend.run_override_columns(base, columns,
                                                   chunk_points=13))
        assert sum(len(c) for c in chunks) == len(jobs)
        offset = 0
        for chunk in chunks:
            assert chunk.start == offset
            for lane in range(len(chunk)):
                result = direct[offset + lane]
                assert chunk.elapsed[lane] == result.elapsed
                assert chunk.n_ranks == result.n_ranks
                for name, sec in result.phase_seconds.items():
                    assert chunk.phase_seconds[name][lane] == sec
                    assert (chunk.phase_compute[name][lane]
                            == result.phase_compute[name])
                    assert (chunk.phase_comm[name][lane]
                            == result.phase_comm[name])
                    assert (chunk.phase_flops_time[name][lane]
                            == result.phase_flops_time[name])
                    assert (chunk.phase_bytes_time[name][lane]
                            == result.phase_bytes_time[name])
            offset += len(chunk)

    def test_all_ones_column_matches_no_overrides(self):
        backend = shared_batch_backend()
        app = get_app("nemo")
        mapping = app.mapping(_ARM, 16)
        program = app.program(mapping)
        binary = app.build(_ARM)
        base = BatchJob(program, _ARM, 16, mapping=mapping, binary=binary,
                        check_memory=False)
        [plain] = backend.run_batch([base])
        chunks = list(backend.run_override_columns(
            base, {"comm_scale": np.ones(4)}))
        assert all(e == plain.elapsed for e in chunks[0].elapsed)

    def test_rejects_nonempty_job_overrides(self):
        backend = shared_batch_backend()
        job = _nemo_jobs(1)[0]
        with pytest.raises(ConfigurationError, match="must be empty"):
            list(backend.run_override_columns(
                job, {"comm_scale": np.ones(2)}))

    def test_rejects_bad_shapes_and_keys(self):
        backend = shared_batch_backend()
        jobs = _nemo_jobs(1)
        base = BatchJob(jobs[0].program, _ARM, 16,
                        mapping=jobs[0].mapping, binary=jobs[0].binary,
                        check_memory=False)
        with pytest.raises(ConfigurationError, match="1-D"):
            list(backend.run_override_columns(
                base, {"comm_scale": np.ones((2, 2))}))
        with pytest.raises(ConfigurationError, match="unknown override"):
            list(backend.run_override_columns(
                base, {"warp_factor": np.ones(2)}))
        with pytest.raises(ConfigurationError, match="one length"):
            list(backend.run_override_columns(
                base, {"comm_scale": np.ones(2),
                       "rate_scale": np.ones(3)}))
        with pytest.raises(ConfigurationError,
                           match="at least one override column"):
            list(backend.run_override_columns(base, {}))


class TestChunkSizing:
    def test_budget_monotone_and_bounded(self):
        app = get_app("nemo")
        tape = compile_tape(app.program(app.mapping(_ARM, 16)))
        sizes = [stream_chunk_points(tape, budget)
                 for budget in (1, 1 << 16, 1 << 22, DEFAULT_STREAM_BUDGET)]
        assert sizes == sorted(sizes)
        assert sizes[0] >= 1
        # doubling the budget at least doesn't shrink the chunk, and the
        # chunk charge stays within the budget once above the 1-point floor
        big = stream_chunk_points(tape, DEFAULT_STREAM_BUDGET)
        assert big * (DEFAULT_STREAM_BUDGET // big) <= DEFAULT_STREAM_BUDGET

    def test_columns_mode_fits_more_points(self):
        app = get_app("nemo")
        tape = compile_tape(app.program(app.mapping(_ARM, 16)))
        assert (stream_chunk_points(tape, 1 << 22, columns=True)
                > stream_chunk_points(tape, 1 << 22))

    def test_rejects_nonpositive_budget(self):
        app = get_app("nemo")
        tape = compile_tape(app.program(app.mapping(_ARM, 16)))
        with pytest.raises(ConfigurationError, match="budget"):
            stream_chunk_points(tape, 0)


class TestValidateOverrides:
    def test_error_lists_sorted_allowed_keys(self):
        with pytest.raises(ConfigurationError) as err:
            validate_overrides({"zz_bogus": 1.0, "aa_bogus": 2.0})
        message = str(err.value)
        assert "['aa_bogus', 'zz_bogus']" in message
        assert f"choose from {sorted(OVERRIDE_KEYS)}" in message

    def test_accepts_none_and_empty(self):
        assert validate_overrides(None) == {}
        assert validate_overrides({}) == {}

    def test_empty_dict_digest_equivalent_to_none(self):
        backend = shared_batch_backend()
        job = _nemo_jobs(1)[0]
        none_job = BatchJob(job.program, _ARM, 16, mapping=job.mapping,
                            binary=job.binary, check_memory=False,
                            overrides=None)
        empty_job = BatchJob(job.program, _ARM, 16, mapping=job.mapping,
                             binary=job.binary, check_memory=False,
                             overrides={})
        ctx_none = backend._prepare(none_job)
        ctx_empty = backend._prepare(empty_job)
        assert ctx_none.digest is not None
        assert ctx_none.digest == ctx_empty.digest
        [a] = backend.run_batch([none_job])
        [b] = backend.run_batch([empty_job])
        _assert_results_equal(a, b)


class _Echo:
    def __init__(self, init):
        self._scale = init

    def handle(self, msg):
        if msg == "boom":
            raise ValueError("boom requested")
        return msg * self._scale


def _echo_factory(init):
    return _Echo(init)


class TestPersistentPoolImap:
    def test_ordered_streaming(self):
        from repro.harness.procpool import PersistentPool

        with PersistentPool(_echo_factory, [10, 10, 10]) as pool:
            results = list(pool.imap(range(50)))
        assert results == [i * 10 for i in range(50)]

    def test_map_matches_imap(self):
        from repro.harness.procpool import PersistentPool

        with PersistentPool(_echo_factory, [2, 2]) as pool:
            assert pool.map(range(9)) == [i * 2 for i in range(9)]

    def test_worker_error_propagates(self):
        from repro.harness.procpool import PersistentPool

        pool = PersistentPool(_echo_factory, [1, 1])
        with pytest.raises(ValueError, match="boom requested"):
            list(pool.imap(["a", "boom", "c", "d"]))

    def test_lazy_input_consumption(self):
        from repro.harness.procpool import PersistentPool

        pulled = []

        def feed():
            for i in range(40):
                pulled.append(i)
                yield i

        with PersistentPool(_echo_factory, [1, 1]) as pool:
            stream = pool.imap(feed())
            first = next(stream)
            # the reorder buffer bounds read-ahead: far fewer than the
            # whole input may have been consumed after one result
            assert first == 0
            assert len(pulled) < 40
            rest = list(stream)
        assert [first] + rest == list(range(40))
