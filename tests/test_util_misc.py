"""RNG derivation, tables, and ASCII plots."""

import numpy as np
import pytest

from repro.util.asciiplot import ascii_heatmap, ascii_histogram, ascii_line_plot
from repro.util.rng import derive_seed, make_rng
from repro.util.tables import Table, format_table


class TestRNG:
    def test_deterministic(self):
        assert make_rng(5, "a").normal() == make_rng(5, "a").normal()

    def test_paths_independent(self):
        assert make_rng(5, "a").normal() != make_rng(5, "b").normal()

    def test_derive_seed_stable(self):
        assert derive_seed(1, "x", 2) == derive_seed(1, "x", 2)
        assert derive_seed(1, "x", 2) != derive_seed(1, "x", 3)

    def test_default_seed(self):
        assert make_rng().normal() == make_rng().normal()


class TestTable:
    def test_add_and_render(self):
        t = Table("T", ["a", "b"])
        t.add_row(1, 2.5)
        text = t.render()
        assert "T" in text and "2.50" in text

    def test_wrong_arity_rejected(self):
        t = Table("T", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_none_renders_na(self):
        t = Table("", ["a"])
        t.add_row(None)
        assert "N/A" in t.render()

    def test_column_extraction(self):
        t = Table("", ["a", "b"])
        t.add_row(1, "x")
        t.add_row(2, "y")
        assert t.column("b") == ["x", "y"]

    def test_markdown_separator(self):
        text = format_table("", ["col"], [[1]], markdown=True)
        assert "---" in text.splitlines()[1]


class TestAsciiPlots:
    def test_line_plot_contains_markers(self):
        art = ascii_line_plot({"s": [(1, 1), (2, 4), (3, 9)]})
        assert "o" in art and "s" in art.splitlines()[-1]

    def test_line_plot_log_axes(self):
        art = ascii_line_plot({"s": [(1, 10), (100, 1000)]}, logx=True, logy=True)
        assert art

    def test_line_plot_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_line_plot({"s": []})

    def test_heatmap_downsamples(self):
        m = np.arange(200 * 200, dtype=float).reshape(200, 200)
        art = ascii_heatmap(m, max_width=40, max_height=20)
        lines = art.splitlines()
        assert len(lines) <= 22
        assert all(len(line) <= 41 for line in lines[:-1])

    def test_heatmap_handles_nan(self):
        m = np.ones((4, 4))
        m[0, 0] = np.nan
        assert "?" in ascii_heatmap(m)

    def test_heatmap_rejects_1d(self):
        with pytest.raises(ValueError):
            ascii_heatmap(np.ones(5))

    def test_histogram_counts(self):
        art = ascii_histogram([1.0] * 10 + [5.0] * 3, bins=4)
        assert "10" in art and "#" in art

    def test_histogram_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_histogram([])
