"""Benchmark drivers: the paper-facing quantitative assertions."""

import numpy as np
import pytest

from repro.bench import (
    fig1_data,
    fig2_data,
    fig3_data,
    fig6_data,
    fig7_data,
    pairwise_bandwidth_map,
)
from repro.bench.fpu_ukernel import check_uniformity, run_fpu_ukernel
from repro.bench.hpcg import hpcg_rate, node_stream_bw
from repro.bench.linpack import (
    FIG6_NODES,
    hpl_efficiency,
    linpack_point,
    problem_size,
    process_grid,
)
from repro.bench.osu import (
    bandwidth_distribution,
    diagonal_banding_score,
    find_weak_links,
)
from repro.bench.stream_bench import (
    best_point,
    check_problem_size,
    stream_hybrid_points,
    stream_openmp_sweep,
)
from repro.machine import cte_arm
from repro.network import network_for
from repro.util.errors import ConfigurationError
from repro.util.units import KIB


class TestFig1:
    def test_six_variants_per_machine(self):
        data = fig1_data()
        assert len(data) == 12
        arm = [r for r in data if r.cluster == "CTE-Arm"]
        assert len({(r.mode, r.dtype) for r in arm}) == 6

    def test_all_near_peak(self):
        assert all(r.percent_of_peak > 95 for r in fig1_data())

    def test_a64fx_vector_hierarchy(self, arm):
        by = {(r.mode.value, r.dtype.name): r for r in run_fpu_ukernel(arm)}
        assert by[("vector", "HALF")].sustained_flops == pytest.approx(
            2 * by[("vector", "SINGLE")].sustained_flops)
        assert by[("vector", "SINGLE")].sustained_flops == pytest.approx(
            2 * by[("vector", "DOUBLE")].sustained_flops)

    def test_scalar_independent_of_dtype(self, arm):
        scalars = [r.sustained_flops for r in run_fpu_ukernel(arm)
                   if r.mode.value == "scalar"]
        assert len(set(scalars)) == 1

    def test_no_variability(self, arm):
        assert check_uniformity(arm) == 0.0


class TestFig2and3:
    def test_fig2_paper_values(self, arm, mn4):
        arm_best = best_point(stream_openmp_sweep(arm, language="c"))
        assert arm_best.bandwidth / 1e9 == pytest.approx(292.0, abs=2.0)
        assert arm_best.threads == 24
        mn4_best = best_point(stream_openmp_sweep(mn4, language="c"))
        assert mn4_best.bandwidth / 1e9 == pytest.approx(201.2, abs=1.0)

    def test_fig2_c_faster_than_fortran_on_arm(self, arm):
        c = best_point(stream_openmp_sweep(arm, language="c"))
        f = best_point(stream_openmp_sweep(arm, language="fortran"))
        assert 1.05 < c.bandwidth / f.bandwidth < 1.15

    def test_fig3_paper_values(self, arm):
        f = best_point(stream_hybrid_points(arm, language="fortran"))
        c = best_point(stream_hybrid_points(arm, language="c"))
        assert f.bandwidth / 1e9 == pytest.approx(862.6, abs=3.0)
        assert c.bandwidth / 1e9 == pytest.approx(421.1, abs=3.0)
        assert f.label == "4x12"

    def test_problem_size_rule_enforced(self, arm):
        with pytest.raises(ConfigurationError):
            check_problem_size(arm, 10**6)
        check_problem_size(arm, 610_000_000)  # the paper's E

    def test_full_fig_data_shapes(self):
        assert len({(p.cluster, p.language) for p in fig2_data()}) == 4
        assert len({(p.cluster, p.language) for p in fig3_data()}) == 4


class TestFig4and5:
    @pytest.fixture(scope="class")
    def small_net(self):
        return network_for(cte_arm(48), n_nodes=48)

    def test_map_shape_and_diagonal(self, small_net):
        m = pairwise_bandwidth_map(small_net, size=256)
        assert m.shape == (48, 48)
        assert np.all(np.isnan(np.diag(m)))
        assert np.nanmin(m) > 0

    def test_banding_torus_vs_fattree(self, small_net, mn4):
        """The torus produces many distance classes (recurring bands); a
        two-level fat tree produces exactly two (same leaf / cross leaf)."""
        torus_map = pairwise_bandwidth_map(small_net, size=256)
        fat_map = pairwise_bandwidth_map(network_for(mn4, n_nodes=48), size=256)

        def levels(m):
            vals = np.round(m[~np.isnan(m)] / 1e6, 1)
            return len(np.unique(vals))

        assert levels(torus_map) > 2 * levels(fat_map)
        assert diagonal_banding_score(torus_map) > 0.2

    def test_weak_node_in_full_map(self, arm):
        net = network_for(arm)
        m = pairwise_bandwidth_map(net, size=256)
        report = find_weak_links(m)
        assert report.weak_receivers == [107]
        assert report.weak_senders == []

    def test_distribution_medians_increase_with_size(self, small_net):
        dists = bandwidth_distribution(small_net, sizes=[256, 4 * KIB, 256 * KIB],
                                       max_pairs=400)
        medians = [np.median(dists[s]) for s in (256, 4 * KIB, 256 * KIB)]
        assert medians == sorted(medians)

    def test_distribution_subsample_deterministic(self, small_net):
        a = bandwidth_distribution(small_net, sizes=[1024], max_pairs=100)
        b = bandwidth_distribution(small_net, sizes=[1024], max_pairs=100)
        assert np.array_equal(a[1024], b[1024])


class TestFig6:
    def test_problem_size_fills_memory(self, arm):
        n = problem_size(arm, 192)
        mem = arm.total_memory_bytes(192)
        assert 0.78 * mem <= 8 * n * n <= 0.82 * mem
        assert n % 240 == 0

    def test_process_grid(self):
        assert process_grid(192) == (12, 16)
        assert process_grid(768) == (24, 32)
        assert process_grid(7) == (1, 7)
        with pytest.raises(ConfigurationError):
            process_grid(0)

    def test_paper_efficiencies(self, arm, mn4):
        assert hpl_efficiency(arm, 1) == pytest.approx(0.90, abs=0.005)
        assert hpl_efficiency(arm, 192) == pytest.approx(0.85, abs=0.01)
        assert hpl_efficiency(mn4, 192) == pytest.approx(0.636, abs=0.01)

    def test_speedups_at_endpoints(self, arm, mn4):
        s1 = linpack_point(arm, 1).gflops / linpack_point(mn4, 1).gflops
        s192 = linpack_point(arm, 192).gflops / linpack_point(mn4, 192).gflops
        assert s1 == pytest.approx(1.25, abs=0.03)
        assert s192 == pytest.approx(1.40, abs=0.03)

    def test_efficiency_declines_with_scale(self, arm):
        pts = [linpack_point(arm, n) for n in FIG6_NODES]
        effs = [p.percent_of_peak for p in pts]
        assert effs == sorted(effs, reverse=True)

    def test_absolute_rate_increases_with_scale(self, arm):
        pts = [linpack_point(arm, n) for n in FIG6_NODES]
        rates = [p.gflops for p in pts]
        assert rates == sorted(rates)

    def test_comm_reported_below_half(self, arm):
        p = linpack_point(arm, 192)
        assert 0 <= p.comm_seconds <= p.compute_seconds

    def test_fig6_has_both_machines(self):
        clusters = {p.cluster for p in fig6_data()}
        assert clusters == {"CTE-Arm", "MareNostrum 4"}


class TestFig7:
    def test_paper_percentages(self, arm):
        assert 100 * hpcg_rate(arm, "optimized", 1) / arm.peak_flops_nodes(1) \
            == pytest.approx(2.91, abs=0.05)
        assert 100 * hpcg_rate(arm, "optimized", 192) / arm.peak_flops_nodes(192) \
            == pytest.approx(2.96, abs=0.05)

    def test_speedups(self, arm, mn4):
        s1 = hpcg_rate(arm, "optimized", 1) / hpcg_rate(mn4, "optimized", 1)
        s192 = hpcg_rate(arm, "optimized", 192) / hpcg_rate(mn4, "optimized", 192)
        assert s1 == pytest.approx(2.5, abs=0.15)
        assert s192 == pytest.approx(3.24, abs=0.15)

    def test_vanilla_below_optimized(self, arm, mn4):
        for cluster in (arm, mn4):
            assert hpcg_rate(cluster, "vanilla", 1) < hpcg_rate(
                cluster, "optimized", 1)

    def test_node_stream_bw_matches_fig3(self, arm):
        assert node_stream_bw(arm) / 1e9 == pytest.approx(862.6, rel=0.02)

    def test_unknown_version_rejected(self, arm):
        with pytest.raises(ConfigurationError):
            hpcg_rate(arm, "turbo", 1)

    def test_fig7_four_bars_per_machine(self):
        pts = fig7_data()
        assert len(pts) == 8
