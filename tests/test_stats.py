"""Statistics helpers: Welford accumulator, means, bimodality."""


import numpy as np
import pytest

from repro.util.rng import make_rng
from repro.util.stats import (
    RunningStats,
    coefficient_of_variation,
    geometric_mean,
    harmonic_mean,
    is_bimodal,
    percentile_summary,
    summarize,
)


class TestRunningStats:
    def test_matches_numpy(self):
        rng = make_rng(1)
        xs = rng.normal(5.0, 2.0, 500)
        rs = summarize(xs)
        assert rs.count == 500
        assert rs.mean == pytest.approx(float(np.mean(xs)))
        assert rs.variance == pytest.approx(float(np.var(xs, ddof=1)))
        assert rs.min == xs.min() and rs.max == xs.max()

    def test_single_sample_zero_variance(self):
        rs = summarize([3.0])
        assert rs.variance == 0.0 and rs.stddev == 0.0

    def test_merge_equals_concatenation(self):
        rng = make_rng(2)
        a, b = rng.normal(size=300), rng.normal(2.0, 3.0, 200)
        merged = summarize(a).merge(summarize(b))
        ref = summarize(np.concatenate([a, b]))
        assert merged.count == ref.count
        assert merged.mean == pytest.approx(ref.mean)
        assert merged.variance == pytest.approx(ref.variance)

    def test_merge_with_empty(self):
        rs = summarize([1.0, 2.0])
        rs.merge(RunningStats())
        assert rs.count == 2


class TestMeans:
    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_harmonic_mean(self):
        # Two legs at 30 and 60 km/h average 40 km/h.
        assert harmonic_mean([30.0, 60.0]) == pytest.approx(40.0)

    def test_harmonic_le_geometric(self):
        xs = [1.0, 5.0, 9.0, 2.0]
        assert harmonic_mean(xs) <= geometric_mean(xs)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            harmonic_mean([])


class TestDistributionTools:
    def test_percentile_summary_keys(self):
        s = percentile_summary(list(range(101)))
        assert s[0.0] == 0 and s[50.0] == 50 and s[100.0] == 100

    def test_cv(self):
        assert coefficient_of_variation([10.0, 10.0, 10.0]) == 0.0
        with pytest.raises(ValueError):
            coefficient_of_variation([1.0, -1.0])

    def test_bimodal_detects_two_modes(self):
        rng = make_rng(3)
        samples = np.concatenate(
            [rng.normal(0.0, 0.5, 400), rng.normal(10.0, 0.5, 400)]
        )
        assert is_bimodal(samples)

    def test_unimodal_not_flagged(self):
        rng = make_rng(4)
        assert not is_bimodal(rng.normal(0.0, 1.0, 800))

    def test_tiny_sample_never_bimodal(self):
        assert not is_bimodal([1.0, 2.0, 3.0])
