"""Roofline analysis and timeline rendering."""

import pytest

from repro.analysis import (
    app_roofline,
    ascii_gantt,
    ascii_roofline,
    machine_roofs,
    ridge_point,
    roofline_table,
    timeline_rows,
)
from repro.apps import AlyaModel, WRFModel
from repro.des.trace import TraceRecorder
from repro.simmpi import RankMapping, World
from repro.util.errors import ConfigurationError


class TestRoofline:
    def test_machine_roofs_match_table1(self, arm, mn4):
        peak, bw = machine_roofs(arm, 1)
        assert peak == pytest.approx(3379.2)
        assert bw == pytest.approx(862.6, rel=0.01)
        peak_m, bw_m = machine_roofs(mn4, 1)
        assert peak_m == pytest.approx(3225.6)
        assert bw_m == pytest.approx(201.2, rel=0.01)

    def test_ridge_points(self, arm, mn4):
        """A64FX's HBM pushes its ridge ~4x left of Skylake's."""
        assert ridge_point(arm) == pytest.approx(3.92, rel=0.02)
        assert ridge_point(mn4) == pytest.approx(16.0, rel=0.02)

    def test_alya_bounds_tell_the_paper_story(self, arm, mn4):
        app = AlyaModel()
        by = {(p.cluster, p.phase): p
              for p in app_roofline(app, arm, 16) + app_roofline(app, mn4, 16)}
        assert by[("CTE-Arm", "assembly")].bound == "compute"
        assert by[("MareNostrum 4", "assembly")].bound == "compute"
        assert by[("CTE-Arm", "solver")].bound == "compute"
        assert by[("MareNostrum 4", "solver")].bound == "memory"

    def test_mn4_solver_near_its_roof(self, mn4):
        points = app_roofline(AlyaModel(), mn4, 16)
        solver = next(p for p in points if p.phase == "solver")
        assert solver.roof_fraction > 0.9

    def test_achieved_never_exceeds_theoretical_roof(self, arm, mn4):
        for cluster in (arm, mn4):
            for p in app_roofline(WRFModel(), cluster, 16):
                assert p.achieved_gflops <= p.roof_gflops * 1.001

    def test_table_and_chart_render(self, arm):
        points = app_roofline(AlyaModel(), arm, 16)
        assert "Bound" in roofline_table(points).render()
        art = ascii_roofline(arm, points, n_nodes=16)
        assert "ridge" in art and "/" in art


class TestTimeline:
    @pytest.fixture()
    def trace(self, arm_small):
        from repro.apps.miniapps import cg_miniapp

        world = World(RankMapping(arm_small, n_nodes=2, ranks_per_node=2))
        return world.run(cg_miniapp, n=64, tol=1e-8).trace

    def test_rows_cover_all_ranks(self, trace):
        rows, legend, t_end = timeline_rows(trace, width=40)
        assert set(rows) == {f"rank{r}" for r in range(4)}
        assert all(len(chars) == 40 for chars in rows.values())
        assert t_end > 0

    def test_legend_names_activities(self, trace):
        _, legend, _ = timeline_rows(trace, width=40)
        assert any("allreduce" in name for name in legend.values())
        assert any("spmv" in name for name in legend.values())

    def test_gantt_renders(self, trace):
        art = ascii_gantt(trace, width=50, title="cg")
        assert "cg" in art and "rank0|" in art.replace(" ", "")

    def test_empty_trace_rejected(self):
        with pytest.raises(ConfigurationError):
            timeline_rows(TraceRecorder())

    def test_imbalance_visible(self, arm_small):
        """A rank with extra compute shows a longer busy row."""

        def program(comm):
            comm.set_phase("work")
            yield from comm.compute(0.5 if comm.rank == 0 else 0.1,
                                    label="busy")
            yield from comm.barrier()

        world = World(RankMapping(arm_small, n_nodes=2, ranks_per_node=1))
        res = world.run(program)
        rows, _, _ = timeline_rows(res.trace, width=50)
        busy0 = sum(c not in " !" for c in rows["rank0"])
        busy1 = sum(c not in " !" for c in rows["rank1"])
        assert busy0 > 3 * busy1
