"""Numerical kernels: FPU, STREAM, LU, CG, HPCG multigrid."""

import numpy as np
import pytest

from repro.kernels.cg import cg_flops_per_iteration, conjugate_gradient
from repro.kernels.fpu import fma_chain, measure_fma_throughput
from repro.kernels.lu import blocked_lu, hpl_flops, hpl_residual, lu_solve
from repro.kernels.multigrid import (
    build_hierarchy,
    hpcg_matrix,
    hpcg_solve,
    symgs,
    v_cycle,
)
from repro.kernels.stream import StreamArrays, run_stream, verify
from repro.util.errors import ConfigurationError


class TestFPU:
    def test_fma_chain_flop_count(self):
        _, flops = fma_chain(100, 10)
        assert flops == 2 * 100 * 10 * 8

    def test_fma_chain_values_finite(self):
        acc, _ = fma_chain(64, 50)
        assert np.all(np.isfinite(acc))

    def test_throughput_positive(self):
        assert measure_fma_throughput(n=256, iters=20, repeats=1) > 1e6

    def test_invalid_args(self):
        with pytest.raises(ConfigurationError):
            fma_chain(0, 10)


class TestStream:
    def test_verification_passes(self):
        bw = run_stream(n=100_000, iterations=3)
        assert set(bw) == {"copy", "scale", "add", "triad"}
        assert all(v > 1e8 for v in bw.values())  # > 0.1 GB/s on any host

    def test_verify_detects_corruption(self):
        arr = StreamArrays.allocate(1000)
        arr.a[0] = 1e9
        assert verify(arr, 1) > 1e-8

    def test_allocation_validation(self):
        with pytest.raises(ConfigurationError):
            StreamArrays.allocate(0)


class TestBlockedLU:
    @pytest.mark.parametrize("n,block", [(50, 8), (64, 64), (100, 32), (33, 7)])
    def test_factorization_correct(self, n, block):
        rng = np.random.default_rng(n)
        a = rng.normal(size=(n, n))
        b = rng.normal(size=n)
        lu, piv = blocked_lu(a.copy(), block=block)
        x = lu_solve(lu, piv, b)
        assert hpl_residual(a, x, b) < 16.0  # the HPL acceptance test
        assert np.allclose(a @ x, b, atol=1e-8)

    def test_matches_numpy_solve(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=(40, 40))
        b = rng.normal(size=40)
        lu, piv = blocked_lu(a.copy(), block=16)
        assert np.allclose(lu_solve(lu, piv, b), np.linalg.solve(a, b))

    def test_singular_rejected(self):
        a = np.zeros((4, 4))
        with pytest.raises(ConfigurationError):
            blocked_lu(a)

    def test_non_square_rejected(self):
        with pytest.raises(ConfigurationError):
            blocked_lu(np.zeros((3, 4)))

    def test_hpl_flops_formula(self):
        assert hpl_flops(100) == pytest.approx(2 / 3 * 1e6 + 2e4)


class TestCG:
    def _spd(self, n, seed=0):
        rng = np.random.default_rng(seed)
        m = rng.normal(size=(n, n))
        return m @ m.T + n * np.eye(n)

    def test_solves_spd_system(self):
        a = self._spd(50)
        b = np.ones(50)
        res = conjugate_gradient(lambda v: a @ v, b, tol=1e-10, max_iter=200)
        assert res.converged
        assert np.allclose(a @ res.x, b, atol=1e-6)

    def test_residual_history_decreases_overall(self):
        a = self._spd(30, seed=2)
        res = conjugate_gradient(lambda v: a @ v, np.ones(30), tol=1e-12)
        assert res.residual_norms[-1] < res.residual_norms[0] * 1e-6

    def test_exact_convergence_in_n_steps(self):
        """CG converges in at most n iterations in exact arithmetic."""
        a = self._spd(20, seed=3)
        res = conjugate_gradient(lambda v: a @ v, np.ones(20), tol=1e-9,
                                 max_iter=25)
        assert res.converged and res.iterations <= 21

    def test_preconditioner_reduces_iterations(self):
        n = 80
        diag = np.linspace(1, 1e4, n)
        a = np.diag(diag)
        b = np.ones(n)
        plain = conjugate_gradient(lambda v: a @ v, b, tol=1e-8, max_iter=500)
        jacobi = conjugate_gradient(lambda v: a @ v, b, tol=1e-8, max_iter=500,
                                    M=lambda r: r / diag)
        assert jacobi.iterations < plain.iterations

    def test_indefinite_rejected(self):
        a = np.diag([1.0, -1.0])
        with pytest.raises(ConfigurationError):
            conjugate_gradient(lambda v: a @ v, np.ones(2))

    def test_zero_rhs_converges_immediately(self):
        a = self._spd(10)
        res = conjugate_gradient(lambda v: a @ v, np.zeros(10))
        assert res.converged and res.iterations == 0

    def test_flops_accounting(self):
        assert cg_flops_per_iteration(nnz=100, n=10) == 2 * 100 + 10 * 10
        assert cg_flops_per_iteration(nnz=100, n=10, preconditioned=True,
                                      mg_flops=500) == 200 + 100 + 500


class TestHPCG:
    def test_matrix_structure(self):
        a = hpcg_matrix(4, 4, 4)
        assert a.shape == (64, 64)
        # interior point has 27 nonzeros, corner has 8.
        nnz_per_row = np.diff(a.indptr)
        assert nnz_per_row.max() == 27 and nnz_per_row.min() == 8
        assert np.allclose(a.diagonal(), 26.0)

    def test_matrix_symmetric(self):
        a = hpcg_matrix(3, 4, 5)
        assert (a - a.T).nnz == 0

    def test_matrix_spd_rowsums_nonnegative(self):
        a = hpcg_matrix(4, 4, 4)
        # weakly diagonally dominant: diag >= sum of |off-diag|
        rowsum = np.asarray(np.abs(a).sum(axis=1)).ravel() - 2 * a.diagonal()
        assert np.all(rowsum <= 0)

    def test_symgs_reduces_residual(self):
        a = hpcg_matrix(4, 4, 4)
        x_exact = np.ones(64)
        b = a @ x_exact
        x = np.zeros(64)
        r0 = np.linalg.norm(b - a @ x)
        symgs(a, x, b)
        assert np.linalg.norm(b - a @ x) < 0.5 * r0

    def test_hierarchy_shapes(self):
        levels = build_hierarchy(16, 16, 16, levels=3)
        assert [lv.shape for lv in levels] == [(16,) * 3, (8,) * 3, (4,) * 3]
        assert levels[-1].coarse_map is None

    def test_hierarchy_requires_divisibility(self):
        with pytest.raises(ConfigurationError):
            build_hierarchy(10, 16, 16, levels=3)

    def test_v_cycle_beats_single_smooth(self):
        levels = build_hierarchy(8, 8, 8, levels=2)
        a = levels[0].a
        b = a @ np.ones(a.shape[0])
        x_mg = v_cycle(levels, 0, b)
        x_gs = symgs(a, np.zeros(b.size), b)
        r_mg = np.linalg.norm(b - a @ x_mg)
        r_gs = np.linalg.norm(b - a @ x_gs)
        assert r_mg < r_gs

    def test_full_hpcg_converges(self):
        result, flops = hpcg_solve(8, 8, 8, levels=2, tol=1e-6, max_iter=40)
        assert result.converged
        assert result.iterations < 15  # MG-preconditioned CG converges fast
        assert flops > 0
