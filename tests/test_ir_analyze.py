"""The static IR analyzer (``repro.ir.analyze``).

Unit tests pin every diagnostic family with a hand-seeded defect; the
golden fixture locks the bundled bench/app matrix to a clean dogfood run;
the golden *negative* reconstructs the historical constant-collective-tag
scheme and asserts the overtaking analyzer finds the bug class that
property testing once needed a dynamic search to hit; the hypothesis
property at the bottom seeds random defects into random clean programs
(flagged) and checks the unmutated programs stay clean (zero false
positives).
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path

import pytest
from hypothesis import given, settings

from repro.ir import (
    Barrier,
    BatchAnalyticBackend,
    CommOp,
    ComputeOp,
    DESBackend,
    Loop,
    Phase,
    Program,
    certified_optimize,
    certify,
    static_clean,
)
from repro.ir.analyze import (
    ANALYZE_VERSION,
    CollEv,
    RecvEv,
    SendEv,
    Traces,
    analyze_program,
    bundled_targets,
    check_resources,
    check_traces,
    effect_summary,
    target,
    unroll,
)
from repro.machine import PartitionCapacity
from repro.machine.presets import cte_arm, marenostrum4
from repro.util.errors import ConfigurationError
from repro.verify.diagnostics import Severity

from .strategies import defect_cases, ir_programs

GOLDEN = Path(__file__).parent / "golden" / "analyze_clean.json"

_CHAN = ("user", 0)


def _rules(diags):
    return sorted(d.rule_id for d in diags)


def _flagged(diags):
    return [d for d in diags
            if d.severity in (Severity.ERROR, Severity.WARNING)]


def _coll_program(*ops):
    return Program(name="t", body=(Phase(name="p", ops=tuple(ops)),),
                   steps=1)


# -- trace unrolling ----------------------------------------------------------


def test_unroll_structure_and_truncation():
    prog = Program(name="t", body=(
        Loop(10, (Phase(name="p", ops=(
            CommOp(kind="allreduce", size=64), Barrier())),)),), steps=10)
    tr = unroll(prog, 4, max_unroll=2)
    assert tr.truncated
    assert tr.n_ranks == 4
    # 2 unrolled trips x (allreduce + barrier) per rank, instance channels
    for r in range(4):
        evs = tr.per_rank[r]
        assert [e.kind for e in evs] == ["allreduce", "barrier"] * 2
        assert len({e.channel for e in evs}) == 4
    # constant scheme collapses the channels per kind
    tc = unroll(prog, 4, max_unroll=2, tag_scheme="constant")
    assert len({e.channel for e in tc.per_rank[0]}) == 2


def test_unroll_rejects_bad_inputs():
    prog = _coll_program(Barrier())
    with pytest.raises(ConfigurationError):
        unroll(prog, 2, tag_scheme="bogus")
    with pytest.raises(ConfigurationError):
        unroll(prog, 0)


# -- matching walk: one seeded defect per rule --------------------------------


def test_walk_clean_symmetric_exchanges():
    prog = _coll_program(
        CommOp(kind="halo", size=4096, neighbors=4),
        CommOp(kind="ring", size=4096),
        CommOp(kind="allreduce", size=64),
        Barrier(),
    )
    assert check_traces(unroll(prog, 8)) == []


def test_walk_deadlock_cycle_sta001():
    t0 = (RecvEv(src=1, channel=_CHAN, size=8, op_id=0, phase="p"),
          SendEv(dst=1, channel=_CHAN, size=8, op_id=1, phase="p"))
    t1 = (RecvEv(src=0, channel=_CHAN, size=8, op_id=2, phase="p"),
          SendEv(dst=0, channel=_CHAN, size=8, op_id=3, phase="p"))
    tr = Traces(n_ranks=2, per_rank=[list(t0), list(t1)])
    assert _rules(check_traces(tr)) == ["STA001"]


def test_walk_missing_sender_sta003():
    t0 = [RecvEv(src=1, channel=_CHAN, size=8, op_id=0, phase="p")]
    tr = Traces(n_ranks=2, per_rank=[t0, []])
    assert _rules(check_traces(tr)) == ["STA003"]


def test_walk_unmatched_send_sta002():
    t0 = [SendEv(dst=1, channel=_CHAN, size=8, op_id=0, phase="p")]
    tr = Traces(n_ranks=2, per_rank=[t0, []])
    diags = check_traces(tr)
    assert _rules(diags) == ["STA002"]
    assert diags[0].details["count"] == 1


def test_walk_dropped_collective_sta004():
    prog = _coll_program(Barrier(), CommOp(kind="allreduce", size=64))
    tr = unroll(prog, 4)
    victim = [e for e in tr.per_rank[2] if e.kind != "barrier"]
    per_rank = list(tr.per_rank)
    per_rank[2] = victim
    mutated = Traces(n_ranks=4, per_rank=per_rank, op_labels=tr.op_labels)
    assert _rules(check_traces(mutated)) == ["STA004"]


def test_walk_root_disagreement_sta005():
    prog = _coll_program(CommOp(kind="bcast", size=64, root=0))
    tr = unroll(prog, 4)
    tr.per_rank[3][0] = tr.per_rank[3][0]._replace(root=1)
    assert _rules(check_traces(tr)) == ["STA005"]


def test_walk_size_mismatch_sta006():
    prog = _coll_program(CommOp(kind="allgather", size=64))
    tr = unroll(prog, 4)
    tr.per_rank[1][0] = tr.per_rank[1][0]._replace(size=128)
    diags = check_traces(tr)
    assert _rules(diags) == ["STA006"]
    assert diags[0].severity is Severity.WARNING


# -- the golden negative: the historical constant-tag scheme ------------------


PR3_GOLDEN = Program(
    name="pr3-golden",
    body=(Loop(2, (Phase(name="step", ops=(
        CommOp(kind="allreduce", size=256 * 1024),   # rendezvous payload
        CommOp(kind="allreduce", size=64),           # eager payload
    )),)),),
    steps=2,
)


def test_constant_tag_scheme_overtaking_sta007():
    """Adjacent same-kind collectives on one shared channel: the exact bug
    class of the historical constant collective tag bases."""
    tr = unroll(PR3_GOLDEN, 4, tag_scheme="constant")
    diags = check_traces(tr)
    assert "STA007" in _rules(diags)
    hazard = next(d for d in diags if d.rule_id == "STA007")
    assert hazard.details["rendezvous_bytes"] == 256 * 1024
    assert hazard.details["eager_bytes"] == 64


def test_instance_tag_scheme_is_clean():
    assert check_traces(unroll(PR3_GOLDEN, 4)) == []
    assert static_clean(PR3_GOLDEN, 4)


def test_user_channel_overtaking_needs_no_collectives():
    prog = _coll_program(
        CommOp(kind="p2p", size=1 << 20),
        CommOp(kind="p2p", size=64),
    )
    assert "STA007" in _rules(check_traces(unroll(prog, 2)))
    # a synchronizing collective strictly between the two ops protects
    protected = _coll_program(
        CommOp(kind="p2p", size=1 << 20),
        Barrier(),
        CommOp(kind="p2p", size=64),
    )
    assert check_traces(unroll(protected, 2)) == []


def test_rooted_collective_does_not_protect():
    unprotected = _coll_program(
        CommOp(kind="p2p", size=1 << 20),
        CommOp(kind="bcast", size=64, root=0),
        CommOp(kind="p2p", size=64),
    )
    assert "STA007" in _rules(check_traces(unroll(unprotected, 2)))


# -- resource bounds ----------------------------------------------------------


def test_capacity_facts():
    cap = PartitionCapacity.of(cte_arm(4), 4)
    assert cap.cores_per_node == 48 and cap.n_domains == 4
    assert cap.memory_bytes_per_node == 32e9  # A64FX: 32 GB HBM2
    assert cap.footprint_per_node(1.0, 8.0) == 3.0


def test_footprint_exceeds_memory_sta008():
    cap = PartitionCapacity.of(cte_arm(4), 4)
    prog = replace(
        _coll_program(ComputeOp(seconds=1e-3)),
        ranks_per_node=4,
        replicated_bytes_per_rank=2e9,   # 8 GB/node replicated
        distributed_bytes_total=800e9,   # 24 GB headroom -> 34 nodes
    )
    diags = check_resources(prog, cap)
    assert _rules(diags) == ["STA008"]
    assert diags[0].details["min_feasible_nodes"] == 34


def test_footprint_near_limit_sta009_and_fit_sta017():
    cap = PartitionCapacity.of(cte_arm(4), 4)
    near = replace(_coll_program(ComputeOp(seconds=1e-3)),
                   replicated_bytes_per_rank=30e9)  # 93.75% of the node
    assert _rules(check_resources(near, cap)) == ["STA009"]
    fits = replace(_coll_program(ComputeOp(seconds=1e-3)),
                   replicated_bytes_per_rank=1e9)
    assert check_resources(fits, cap) == []
    assert _rules(check_resources(fits, cap, include_ok=True)) == ["STA017"]


def test_oversubscription_sta010_and_misalignment_sta011():
    cap = PartitionCapacity.of(cte_arm(2), 2)
    over = replace(_coll_program(ComputeOp(seconds=1e-3)),
                   ranks_per_node=49)
    assert _rules(check_resources(over, cap)) == ["STA010"]
    skewed = replace(_coll_program(ComputeOp(seconds=1e-3)),
                     ranks_per_node=5)
    assert "STA011" in _rules(check_resources(skewed, cap))


def test_dead_op_sta016_is_advice():
    prog = _coll_program(ComputeOp(seconds=0.0),
                         ComputeOp(seconds=1e-3))
    cap = PartitionCapacity.of(cte_arm(2), 2)
    diags = check_resources(prog, cap)
    assert _rules(diags) == ["STA016"]
    assert all(d.severity is Severity.ADVICE for d in diags)


def test_osu_nic_floor_sta012_is_advice():
    cluster = cte_arm(48)
    t = target("osu", cluster, 48)
    report = analyze_program(t.program, cluster, 48)
    assert _rules(report) == ["STA012"]
    assert report.clean  # advice is not a finding


# -- pass soundness -----------------------------------------------------------


def test_certificates_on_bundled_programs():
    cluster = cte_arm(8)
    for t in bundled_targets(cluster, 8):
        _, cert = certified_optimize(t.program)
        assert cert.ok, (t.name, cert.mismatches)


def test_broken_pass_is_caught():
    before = _coll_program(
        ComputeOp(seconds=1e-3),
        CommOp(kind="allreduce", size=64),
    )
    after = _coll_program(ComputeOp(seconds=1e-3))
    cert = certify(before, after)
    assert not cert.ok
    assert any("comm" in m for m in cert.mismatches)
    assert "FAILED" in cert.render()


def test_effect_summary_is_order_insensitive():
    a = _coll_program(ComputeOp(seconds=1e-3), ComputeOp(seconds=2e-3))
    b = _coll_program(ComputeOp(seconds=2e-3), ComputeOp(seconds=1e-3))
    assert effect_summary(a) == effect_summary(b)


def test_analyze_program_reports_sta013(monkeypatch):
    import repro.ir.analyze.framework as fw
    from repro.ir.analyze.effects import PassCertificate

    monkeypatch.setattr(
        fw, "certified_optimize",
        lambda p: (p, PassCertificate(False, ("phase 'p': broken",), "x")))
    report = analyze_program(_coll_program(Barrier()), cte_arm(2), 2,
                             checks=("soundness",))
    assert _rules(report) == ["STA013"]


# -- driver, dogfood golden, and backend integration --------------------------


def test_analyze_program_rejects_unknown_check():
    with pytest.raises(ConfigurationError):
        analyze_program(_coll_program(Barrier()), cte_arm(2), 2,
                        checks=("comm", "nope"))


def test_dogfood_matrix_matches_golden(request):
    nodes = 48
    got = {"analyze_version": ANALYZE_VERSION, "nodes": nodes,
           "clusters": {}}
    for key, cluster in (("cte-arm", cte_arm(nodes)),
                         ("mn4", marenostrum4(nodes))):
        got["clusters"][key] = {
            t.name: sorted(d.rule_id for d in
                           analyze_program(t.program, cluster, t.n_nodes))
            for t in bundled_targets(cluster, nodes)
        }
    if request.config.getoption("--update-golden"):
        GOLDEN.write_text(json.dumps(got, indent=2, sort_keys=True) + "\n")
    assert got == json.loads(GOLDEN.read_text())


def test_des_backend_auto_verify_skips_recorder():
    cluster = cte_arm(2)
    prog = replace(_coll_program(CommOp(kind="allreduce", size=64),
                                 Barrier()),
                   ranks_per_node=2)
    result = DESBackend().run(prog, cluster, 2, verify="auto")
    assert result.world is not None
    assert result.world.diagnostics is None  # proven clean, not recorded


def test_batch_backend_analyze_gate():
    cluster = cte_arm(2)
    clean = replace(_coll_program(ComputeOp(seconds=1e-3), Barrier()),
                    ranks_per_node=2)
    backend = BatchAnalyticBackend()
    assert backend.run(clean, cluster, 2, analyze=True).elapsed > 0
    hazard = replace(_coll_program(CommOp(kind="p2p", size=1 << 20),
                                   CommOp(kind="p2p", size=64)),
                     ranks_per_node=2)
    with pytest.raises(ConfigurationError, match="static"):
        backend.run(hazard, cluster, 2, analyze=True)


def test_cli_analyze_text_json_and_errors(capsys):
    from repro.harness.cli import main

    assert main(["analyze", "hpcg", "--nodes", "8"]) == 0
    assert main(["analyze", "osu", "--nodes", "48", "--strict"]) == 0
    assert "STA012" in capsys.readouterr().out
    assert main(["analyze", "nope"]) == 2
    assert main(["analyze", "hpcg", "--checks", "bogus"]) == 2


def test_cli_analyze_json_payload(capsys):
    from repro.harness.cli import main

    assert main(["analyze", "osu", "--nodes", "48", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["clean"] is True
    assert [d["rule"] for d in payload["diagnostics"]] == ["STA012"]
    assert payload["diagnostics"][0]["location"].startswith("osu")


def test_verify_app_carries_sta_stream():
    from repro.verify import verify_app

    report = verify_app("gromacs", cluster="cte-arm", n_nodes=2,
                        dynamic=False, include_ok=True)
    assert report.by_rule("STA015")
    assert report.by_rule("STA014")


# -- hypothesis: seeded defects are found, clean programs stay clean ----------


@settings(max_examples=40, deadline=None)
@given(case=defect_cases())
def test_defect_injection_property(case):
    traces = unroll(case.program, case.n_ranks)
    assert _flagged(check_traces(traces)) == [], "false positive"
    if case.defect == "oversize_footprint":
        cap = PartitionCapacity.of(cte_arm(2), 2)
        mutated = case.mutated_program(cap.memory_bytes_per_node)
        diags = check_resources(mutated, cap)
        assert any(d.rule_id == "STA008" for d in diags)
    else:
        diags = check_traces(case.mutate_traces(traces))
        assert _flagged(diags), case.defect


@settings(max_examples=40, deadline=None)
@given(program=ir_programs(rich=True))
def test_passes_certified_on_random_programs(program):
    _, cert = certified_optimize(program)
    assert cert.ok, cert.mismatches
