"""Trace recorder modes and the shared phase-matching rule."""

from __future__ import annotations

import pytest

from repro.des.trace import PHASE_SEP, TraceRecorder, phase_matches
from repro.machine import cte_arm
from repro.simmpi import RankMapping, ReduceOp, World
from repro.util.errors import ConfigurationError


class TestPhaseMatches:
    def test_exact(self):
        assert phase_matches("solver", "solver")

    def test_subphase(self):
        assert phase_matches("solver" + PHASE_SEP + "allreduce", "solver")

    def test_no_plain_prefix_conflation(self):
        assert not phase_matches("solver_setup", "solver")

    def test_distinct(self):
        assert not phase_matches("assembly", "solver")


class TestRecorderModes:
    def _fill(self, rec: TraceRecorder) -> None:
        rec.record(0.0, 1.0, "rank0", "solver")
        rec.record(1.0, 2.0, "rank0", "solver:allreduce")
        rec.record(0.0, 4.0, "rank1", "solver")
        rec.record(0.0, 8.0, "rank0", "solver_setup")

    def test_full_keeps_records_and_totals(self):
        rec = TraceRecorder(mode="full")
        self._fill(rec)
        assert len(rec) == 4
        assert rec.total_time("solver") == 7.0
        assert rec.per_actor("solver") == {"rank0": 3.0, "rank1": 4.0}
        assert rec.slowest_actor("solver") == ("rank1", 4.0)

    def test_aggregate_drops_records_keeps_totals(self):
        rec = TraceRecorder(mode="aggregate")
        self._fill(rec)
        assert len(rec) == 0
        assert rec.total_time("solver") == 7.0
        assert rec.per_actor("solver") == {"rank0": 3.0, "rank1": 4.0}
        assert rec.phases() == {"solver", "solver:allreduce", "solver_setup"}

    def test_off_records_nothing(self):
        rec = TraceRecorder(mode="off")
        self._fill(rec)
        assert len(rec) == 0
        assert rec.total_time("solver") == 0.0

    def test_enabled_false_maps_to_off(self):
        rec = TraceRecorder(enabled=False)
        assert rec.mode == "off"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            TraceRecorder(mode="verbose")


class TestWorldTraceModes:
    def _run(self, trace):
        mapping = RankMapping(cte_arm(12), n_nodes=2, ranks_per_node=2)
        world = World(mapping, trace=trace)

        def program(comm):
            comm.set_phase("solver")
            value = yield from comm.allreduce(1.0, op=ReduceOp.SUM, size=64)
            comm.set_phase("assembly")
            yield from comm.compute(1e6)
            return value

        return world.run(program)

    def test_aggregate_phase_time_equals_full(self):
        """phase_time works identically from the totals index alone."""
        full = self._run("full")
        agg = self._run("aggregate")
        for phase in ("solver", "assembly"):
            for reduction in ("max", "mean", "sum"):
                assert agg.phase_time(phase, reduction=reduction) == (
                    full.phase_time(phase, reduction=reduction)
                )
        assert len(full.trace) > 0
        assert len(agg.trace) == 0

    def test_trace_bool_compatibility(self):
        assert self._run(True).phase_time("solver") > 0.0
        off = self._run(False)
        assert off.phase_time("solver") == 0.0
        assert len(off.trace) == 0
