"""Executable mini-apps: distributed numerics equal sequential references."""

import numpy as np
import pytest

from repro.apps.miniapps import (
    cg_miniapp,
    ring_allreduce_check,
    sequential_stencil,
    stencil_miniapp,
)
from repro.simmpi import RankMapping, World
from repro.util.errors import ConfigurationError


def glue(results, shape):
    out = np.zeros(shape)
    for r in results:
        (y0, y1), (x0, x1) = r["rows"], r["cols"]
        out[y0:y1, x0:x1] = r["block"]
    return out


class TestStencilMiniapp:
    @pytest.mark.parametrize("n_nodes,rpn", [(1, 4), (2, 2), (4, 2), (3, 3)])
    def test_matches_sequential(self, arm_small, n_nodes, rpn):
        world = World(RankMapping(arm_small, n_nodes=n_nodes,
                                  ranks_per_node=rpn))
        res = world.run(stencil_miniapp, global_shape=(48, 48), steps=5)
        glued = glue(res.rank_results, (48, 48))
        ref = sequential_stencil((48, 48), steps=5)
        assert np.abs(glued - ref).max() < 1e-13

    def test_global_sum_agrees_across_ranks(self, small_world):
        res = small_world.run(stencil_miniapp, global_shape=(32, 32), steps=3)
        totals = {round(r["total"], 12) for r in res.rank_results}
        assert len(totals) == 1

    def test_virtual_time_positive_and_finite(self, small_world):
        res = small_world.run(stencil_miniapp, global_shape=(32, 32), steps=3)
        assert 0 < res.elapsed < 1.0

    def test_more_steps_more_time(self, arm_small):
        def run(steps):
            world = World(RankMapping(arm_small, n_nodes=2, ranks_per_node=2))
            return world.run(stencil_miniapp, global_shape=(32, 32),
                             steps=steps).elapsed

        assert run(8) > run(2)


class TestCGMiniapp:
    @pytest.mark.parametrize("rpn", [1, 2, 4])
    def test_solution_independent_of_decomposition(self, arm_small, rpn):
        world = World(RankMapping(arm_small, n_nodes=2, ranks_per_node=rpn))
        res = world.run(cg_miniapp, n=64, tol=1e-10)
        x = np.concatenate([r["x_local"] for r in res.rank_results])
        # Reference: direct solve of the tridiagonal system.
        n = 64
        a = (np.diag(2.0 * np.ones(n)) - np.diag(np.ones(n - 1), 1)
             - np.diag(np.ones(n - 1), -1))
        b = np.random.default_rng(3).normal(size=n)
        assert np.abs(x - np.linalg.solve(a, b)).max() < 1e-7

    def test_residual_below_tolerance(self, small_world):
        res = small_world.run(cg_miniapp, n=128, tol=1e-9)
        assert all(r["residual"] < 1e-6 for r in res.rank_results)

    def test_iterations_identical_on_all_ranks(self, small_world):
        res = small_world.run(cg_miniapp, n=128)
        assert len({r["iterations"] for r in res.rank_results}) == 1

    def test_indivisible_n_rejected(self, arm_small):
        world = World(RankMapping(arm_small, n_nodes=3, ranks_per_node=1))
        with pytest.raises(ConfigurationError):
            world.run(cg_miniapp, n=100)  # 100 % 3 != 0

    def test_arm_slower_than_mn4_for_same_program(self, arm_small, mn4):
        """The mini-app's virtual times reproduce the paper's direction:
        compute-heavy CG is slower on the A64FX partition."""
        res_arm = World(RankMapping(arm_small, n_nodes=2,
                                    ranks_per_node=4)).run(cg_miniapp, n=128)
        res_mn4 = World(RankMapping(mn4, n_nodes=2,
                                    ranks_per_node=4)).run(cg_miniapp, n=128)
        # The CG mini-app charges a fixed per-rank rate, so times differ
        # only through the network; both must at least be positive and of
        # the same order.
        assert res_arm.elapsed > 0 and res_mn4.elapsed > 0


class TestAllreduceCheck:
    def test_sums_rank_values(self, small_world):
        res = small_world.run(ring_allreduce_check, 2.5)
        assert all(v == pytest.approx(8 * 2.5) for v in res.rank_results)
