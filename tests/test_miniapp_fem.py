"""Distributed FEM mini-app (the full Alya pipeline)."""

import numpy as np
import pytest

from repro.apps.miniapp_fem import fem_miniapp, sequential_fem
from repro.simmpi import RankMapping, World


def _world(arm_small, p):
    n_nodes = min(p, 4)
    return World(RankMapping(arm_small, n_nodes=n_nodes,
                             ranks_per_node=-(-p // n_nodes)))


class TestFEMMiniapp:
    @pytest.mark.parametrize("p", [1, 2, 4, 6])
    def test_matches_sequential_solution(self, arm_small, p):
        world = _world(arm_small, p)
        res = world.run(fem_miniapp, cells=4)
        x_seq, _, _ = sequential_fem(4)
        for r in res.rank_results:
            assert np.abs(r["x"] - x_seq).max() < 1e-10

    def test_residual_small(self, arm_small):
        res = _world(arm_small, 4).run(fem_miniapp, cells=4, tol=1e-10)
        assert all(r["residual"] < 1e-8 for r in res.rank_results)

    def test_elements_partitioned_fully(self, arm_small):
        res = _world(arm_small, 4).run(fem_miniapp, cells=3)
        total = sum(r["my_elements"] for r in res.rank_results)
        assert total == 27 * 6  # every tetrahedron assembled exactly once

    def test_both_phases_traced(self, arm_small):
        res = _world(arm_small, 2).run(fem_miniapp, cells=3)
        assert res.phase_time("assembly") > 0
        assert res.phase_time("solver") > 0
        # The solver's collectives dominate its phase (Alya's Fig. 10
        # structure: iterations separated by collective communications).
        solver_comm = res.phase_time("solver:allreduce", reduction="sum") + \
            res.phase_time("solver:allgather", reduction="sum")
        assert solver_comm > 0

    def test_iterations_agree_across_ranks(self, arm_small):
        res = _world(arm_small, 4).run(fem_miniapp, cells=4)
        assert len({r["iterations"] for r in res.rank_results}) == 1

    def test_preconditioning_effective(self, arm_small):
        """Jacobi-PCG converges in far fewer iterations than the mesh size."""
        res = _world(arm_small, 2).run(fem_miniapp, cells=4)
        assert res.rank_results[0]["iterations"] < 30
