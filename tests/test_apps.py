"""Application workload models: feasibility, paper ratios, phase structure."""

import pytest

from repro.apps import (
    ALL_APPS,
    AlyaModel,
    GromacsModel,
    NemoModel,
    OpenIFSModel,
    WRFModel,
    get_app,
)
from repro.apps.base import CommOp
from repro.network.collectives import CollectiveCosts
from repro.network.model import network_for
from repro.simmpi.mapping import RankMapping
from repro.util.errors import ConfigurationError, OutOfMemoryError


class TestRegistry:
    def test_all_five_apps(self):
        assert set(ALL_APPS) == {"alya", "nemo", "gromacs", "openifs", "wrf"}

    def test_get_app(self):
        assert isinstance(get_app("Alya"), AlyaModel)
        with pytest.raises(KeyError):
            get_app("hpl")


class TestFeasibility:
    """The NP boundaries of Table IV."""

    def test_alya_needs_12_arm_nodes(self, arm, mn4):
        app = AlyaModel()
        assert app.min_nodes(arm) == 12
        assert app.min_nodes(mn4) <= 4
        with pytest.raises(OutOfMemoryError):
            app.time_step(arm, 11)
        app.check_feasible(arm, 12)

    def test_nemo_needs_8_arm_nodes(self, arm, mn4):
        app = NemoModel()
        assert app.min_nodes(arm) == 8
        assert app.min_nodes(mn4) == 1

    def test_openifs_tc0511_needs_32_arm_nodes(self, arm):
        app = OpenIFSModel("TC0511L91")
        assert app.min_nodes(arm) == 32
        with pytest.raises(OutOfMemoryError):
            app.time_step(arm, 31)

    def test_openifs_tl255_fits_one_node(self, arm):
        assert OpenIFSModel("TL255L91").min_nodes(arm) == 1

    def test_gromacs_wrf_fit_everywhere(self, arm):
        assert GromacsModel().min_nodes(arm) == 1
        assert WRFModel().min_nodes(arm) == 1

    def test_scaling_marks_np(self, arm):
        pts = AlyaModel().scaling(arm, [8, 12, 16])
        assert not pts[0].feasible and pts[1].feasible

    def test_unknown_input_rejected(self):
        with pytest.raises(ConfigurationError):
            OpenIFSModel("TL9999")


class TestPaperRatios:
    """The Section V headline numbers (tolerances per EXPERIMENTS.md)."""

    def test_alya_phase_ratios(self, arm, mn4):
        app = AlyaModel()
        ta, tm = app.time_step(arm, 12), app.time_step(mn4, 12)
        assert ta.phase_seconds["assembly"] / tm.phase_seconds["assembly"] \
            == pytest.approx(4.96, rel=0.08)
        assert ta.phase_seconds["solver"] / tm.phase_seconds["solver"] \
            == pytest.approx(1.79, rel=0.08)
        assert ta.total / tm.total == pytest.approx(3.4, rel=0.1)

    def test_alya_crossover_nodes(self, arm, mn4):
        app = AlyaModel()
        match = app.nodes_to_match(arm, mn4, 12, max_nodes=78)
        assert match is not None and abs(match - 44) <= 6

    def test_nemo_ratio_band(self, arm, mn4):
        app = NemoModel()
        r = app.time_step(arm, 8).total / app.time_step(mn4, 8).total
        assert 1.6 < r < 1.95

    def test_gromacs_single_node_ratio(self, arm, mn4):
        app = GromacsModel()
        r = app.days_per_ns(arm, 1) / app.days_per_ns(mn4, 1)
        assert 2.7 < r < 3.6

    def test_gromacs_gap_shrinks_with_scale(self, arm, mn4):
        app = GromacsModel()
        r1 = app.days_per_ns(arm, 1) / app.days_per_ns(mn4, 1)
        r144 = app.days_per_ns(arm, 144) / app.days_per_ns(mn4, 144)
        assert r144 < 0.65 * r1
        assert 1.3 < r144 < 2.0  # paper: 1.5x

    def test_gromacs_16_rank_anomaly(self, arm):
        normal = GromacsModel(anomaly=False)
        anomalous = GromacsModel()
        # 2 nodes x 8 rpn = 16 ranks triggers it; the 12x8 layout avoids it.
        t_bad = anomalous.time_step(arm, 2).total
        t_good = normal.time_step(arm, 2).total
        assert t_bad > 1.25 * t_good
        # No anomaly at other scales.
        assert anomalous.time_step(arm, 4).total < anomalous.time_step(arm, 2).total

    def test_openifs_ratios(self, arm, mn4):
        multi = OpenIFSModel("TC0511L91")
        r32 = multi.time_step(arm, 32).total / multi.time_step(mn4, 32).total
        r128 = multi.time_step(arm, 128).total / multi.time_step(mn4, 128).total
        assert 2.9 < r32 < 3.9  # paper 3.55
        assert 2.2 < r128 < 2.95  # paper 2.56
        assert r128 < r32  # the gap narrows at scale

    def test_wrf_ratio_roughly_flat(self, arm, mn4):
        app = WRFModel()
        r1 = app.elapsed_seconds(arm, 1) / app.elapsed_seconds(mn4, 1)
        r64 = app.elapsed_seconds(arm, 64) / app.elapsed_seconds(mn4, 64)
        assert 1.95 < r1 < 2.45  # paper 2.16
        assert 1.85 < r64 < 2.50  # paper 2.23

    def test_wrf_io_overhead_small(self, arm, mn4):
        on, off = WRFModel(io_enabled=True), WRFModel(io_enabled=False)
        for cluster in (arm, mn4):
            for n in (1, 16, 64):
                ratio = on.elapsed_seconds(cluster, n) / off.elapsed_seconds(
                    cluster, n)
                assert 1.0 <= ratio < 1.10

    def test_all_apps_slower_on_arm(self, arm, mn4):
        """Table IV: every application favours MareNostrum 4."""
        for name in ALL_APPS:
            app = OpenIFSModel("TC0511L91") if name == "openifs" else get_app(name)
            n = max(app.min_nodes(arm), app.min_nodes(mn4), 32)
            assert app.time_step(arm, n).total > app.time_step(mn4, n).total


class TestStructure:
    def test_strong_scaling_monotone(self, arm):
        app = NemoModel()
        times = [app.time_step(arm, n).total for n in (8, 16, 32, 64)]
        assert times == sorted(times, reverse=True)

    def test_phase_breakdown_sums(self, arm):
        t = AlyaModel().time_step(arm, 16)
        assert t.total == pytest.approx(sum(t.phase_seconds.values()))
        assert set(t.phase_seconds) == {"assembly", "solver", "other"}

    def test_compute_comm_split_recorded(self, arm):
        t = AlyaModel().time_step(arm, 16)
        for phase in t.phase_seconds:
            assert t.phase_compute[phase] >= 0
            assert t.phase_comm[phase] >= 0
            assert t.phase_compute[phase] + t.phase_comm[phase] \
                <= t.phase_seconds[phase] + 1e-12

    def test_build_log_tells_deployment_story(self, arm, mn4):
        logs = {app.name: app.build_log(arm)
                for app in (AlyaModel(), NemoModel(), GromacsModel(),
                            OpenIFSModel())}
        # The four apps the paper tried under Fujitsu all fail over to GNU.
        for name, log in logs.items():
            assert log[0][0].startswith("Fujitsu")
            assert "failure" in log[0][1]
            assert log[-1][1] == "ok"
        # WRF was configured with GNU directly (no Fujitsu attempt reported).
        wrf_log = WRFModel().build_log(arm)
        assert wrf_log == [("GNU/8.3.1-sve", "ok")]
        # On MareNostrum 4 the first try works.
        assert AlyaModel().build_log(mn4) == [("GNU/8.4.2", "ok")]

    def test_comm_op_validation(self, arm):
        mapping = RankMapping(arm, n_nodes=2, ranks_per_node=2)
        costs = CollectiveCosts(mapping=mapping,
                                network=network_for(arm, n_nodes=2))
        with pytest.raises(ConfigurationError):
            CommOp("teleport", 8).cost(costs)
        assert CommOp("allreduce", 8, count=0).cost(costs) == 0.0

    def test_job_with_nodes_preserves_total(self):
        app = AlyaModel()
        j12, j24 = app.job(12), app.job(24)
        assert j12.memory_per_node_bytes > j24.memory_per_node_bytes
