"""Full-report generation and its scorecard."""

from repro.harness.cli import main as cli_main
from repro.harness.report import generate_report


class TestReport:
    def test_report_structure(self):
        text = generate_report(include_figures=False,
                               include_extensions=False)
        for section in ("II. System configuration",
                        "III-B. Memory performance",
                        "V. Scientific applications",
                        "VI. Conclusions", "SCORECARD"):
            assert section in text
        # paper-only run: extensions absent
        assert "Extensions beyond the paper" not in text

    def test_scorecard_all_green(self):
        text = generate_report(include_figures=False,
                               include_extensions=False)
        line = next(l for l in text.splitlines()
                    if "expectations held" in l)
        held, total = line.split(":")[1].strip().split("/")
        assert held == total
        assert "uncovered claims" not in text

    def test_cli_report(self, capsys):
        assert cli_main(["report", "--no-figure", "--no-extensions"]) == 0
        out = capsys.readouterr().out
        assert "REPRODUCTION REPORT" in out
