"""Torus routes and congestion accounting."""

import pytest

from repro.network.routing import (
    alltoall_flows,
    analyze_congestion,
    dimension_order_route,
    halo_flows,
    link_loads,
)
from repro.network.torus import TorusTopology, tofu_d
from repro.util.errors import ConfigurationError


@pytest.fixture(scope="module")
def torus():
    return tofu_d(24)


class TestRoutes:
    def test_route_length_equals_hops(self, torus):
        for a in range(0, 24, 5):
            for b in range(0, 24, 7):
                route = dimension_order_route(torus, a, b)
                assert len(route) == torus.hops(a, b)

    def test_route_is_connected(self, torus):
        """Each link starts where the previous one ended."""
        route = dimension_order_route(torus, 0, 23)
        node = 0
        for here, axis, step in route:
            assert here == node
            coords = list(torus.coords(node))
            coords[axis] = (coords[axis] + step) % torus.dims[axis]
            node = torus.node_at(tuple(coords))
        assert node == 23

    def test_self_route_empty(self, torus):
        assert dimension_order_route(torus, 5, 5) == []

    def test_short_way_around_ring(self):
        ring = TorusTopology((8,))
        route = dimension_order_route(ring, 0, 7)
        assert len(route) == 1 and route[0] == (0, 0, -1)


class TestLoads:
    def test_single_flow_loads_its_route(self, torus):
        loads = link_loads(torus, [(0, 5, 100.0)])
        assert sum(loads.values()) == 100.0 * torus.hops(0, 5)
        assert all(v == 100.0 for v in loads.values())

    def test_negative_volume_rejected(self, torus):
        with pytest.raises(ConfigurationError):
            link_loads(torus, [(0, 1, -5.0)])

    def test_alltoall_congestion_nonuniform(self, torus):
        report = analyze_congestion(torus, alltoall_flows(list(range(12))))
        assert report.max_load > 0
        assert report.imbalance >= 1.0
        assert report.n_links_used > 0

    def test_compact_halo_does_less_network_work(self, torus):
        """Topology-aware placement reduces *total* link traffic
        (bytes x hops) for stencil patterns — the scheduler ablation at the
        link level.  (Peak per-link load can go either way: compact
        placements concentrate, scattered ones spread.)"""
        compact = list(range(8))
        scattered = [0, 3, 7, 11, 14, 17, 20, 23]
        work = lambda nodes: sum(  # noqa: E731
            link_loads(torus, halo_flows(torus, nodes)).values())
        assert work(compact) < work(scattered)

    def test_empty_pattern(self, torus):
        report = analyze_congestion(torus, [])
        assert report.max_load == 0.0 and report.n_links_used == 0


class TestValiantRouting:
    def test_route_reaches_destination(self, torus):
        from repro.network.routing import valiant_route

        route = valiant_route(torus, 0, 17, seed=3)
        node = 0
        for here, axis, step in route:
            assert here == node
            coords = list(torus.coords(node))
            coords[axis] = (coords[axis] + step) % torus.dims[axis]
            node = torus.node_at(tuple(coords))
        assert node == 17

    def test_deterministic_per_seed(self, torus):
        from repro.network.routing import valiant_route

        assert valiant_route(torus, 0, 17, seed=3) == valiant_route(
            torus, 0, 17, seed=3)

    def test_spreads_hotspots_at_cost_of_work(self, torus):
        """The classic Valiant trade-off on an adversarial pattern: all
        nodes hammer one destination region."""
        flows = [(src, 23, 1.0) for src in range(20)]
        dor = link_loads(torus, flows)
        val = link_loads(torus, flows, routing="valiant", seed=1)
        # randomized routing spreads the traffic over more links and
        # carries a smaller fraction of it on the hottest link...
        assert len(val) > len(dor)
        assert max(val.values()) / sum(val.values()) \
            < max(dor.values()) / sum(dor.values())
        # ...while doing more total network work (the Valiant tax).
        assert sum(val.values()) > sum(dor.values())

    def test_unknown_routing_rejected(self, torus):
        with pytest.raises(ConfigurationError):
            link_loads(torus, [(0, 1, 1.0)], routing="teleport")
