"""Unit tests for the engine-agnostic workload IR (repro.ir).

Covers the op vocabulary's validation, the JSON round-trip, the balanced
process-grid rule that replaced ``des_runner._grid_neighbors``, the
backend registry, and — the load-bearing property of the refactor — the
analytic backend reproducing ``AppModel.time_step`` bit-for-bit.
"""

from __future__ import annotations

import pytest

from repro.ir import (
    AnalyticBackend,
    Barrier,
    CommOp,
    ComputeOp,
    DESBackend,
    FastCollBackend,
    Loop,
    MemOp,
    Phase,
    Program,
    SerialOp,
    compile_phases,
    default_backend_name,
    from_json,
    get_backend,
    grid_dims,
    grid_neighbors,
    set_default_backend,
    to_dict,
    to_json,
)
from repro.ir.lower import _comm_reps
from repro.machine import cte_arm
from repro.simmpi.mapping import RankMapping
from repro.util.errors import ConfigurationError, OutOfMemoryError

_CLUSTER = cte_arm(16)


def _toy_program(steps: int = 2) -> Program:
    return Program(
        name="toy",
        body=(Loop(steps, (
            Phase("work", (
                ComputeOp(seconds=1e-4),
                CommOp("allreduce", 4096),
            )),
            Phase("sync", (Barrier(),)),
        )),),
        steps=steps,
    )


class TestOps:
    def test_unknown_comm_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            CommOp("teleport", 8)

    def test_negative_work_rejected(self):
        with pytest.raises(ConfigurationError):
            ComputeOp(flops=-1.0)
        with pytest.raises(ConfigurationError):
            MemOp(bytes_moved=-1)
        with pytest.raises(ConfigurationError):
            SerialOp(seconds=-0.1)

    def test_imbalance_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            ComputeOp(flops=1.0, imbalance=0.5)

    def test_zero_count_comm_costs_nothing(self):
        from repro.network.collectives import CollectiveCosts
        from repro.network.model import network_for

        mapping = RankMapping(_CLUSTER, n_nodes=2, ranks_per_node=2)
        costs = CollectiveCosts(
            mapping=mapping, network=network_for(_CLUSTER, n_nodes=2))
        assert CommOp("allreduce", 8, count=0).cost(costs) == 0.0

    def test_structure_validation(self):
        with pytest.raises(ConfigurationError):
            Phase("")
        with pytest.raises(ConfigurationError):
            Loop(-1)
        with pytest.raises(ConfigurationError):
            Program(name="", body=())
        with pytest.raises(ConfigurationError):
            Program(name="x", body=(), steps=0)


class TestProgram:
    def test_iter_phases_multiplies_loop_counts(self):
        program = _toy_program(steps=3)
        occurrences = list(program.iter_phases())
        assert [(ph.name, mult) for ph, mult in occurrences] == [
            ("work", 3), ("sync", 3)]
        assert program.phase_names() == ["work", "sync"]

    def test_memory_gate(self):
        program = Program(
            name="big", body=(Phase("p", (ComputeOp(seconds=1e-6),)),),
            ranks_per_node=1,
            distributed_bytes_total=4 * _CLUSTER.node.memory_bytes,
        )
        with pytest.raises(OutOfMemoryError):
            program.check_feasible(_CLUSTER, 1)
        program.check_feasible(_CLUSTER, 8)


class TestSerialize:
    def test_round_trip_identity(self):
        program = Program(
            name="rt",
            body=(Loop(2, (Phase("p", (
                ComputeOp(flops=1e9, bytes_moved=1e8, imbalance=1.1,
                          rate_per_core=2e9),
                MemOp(bytes_moved=1e7),
                SerialOp(seconds=1e-3),
                CommOp("halo", 4096, count=2.0, neighbors=6),
                Barrier(),
            )),)),),
            steps=2,
            ranks_per_node=4,
            threads_per_rank=2,
            language="fortran",
        )
        assert from_json(to_json(program)) == program

    def test_round_trip_identical_analytic_cost(self):
        program = _toy_program()
        backend = AnalyticBackend()
        before = backend.run(program, _CLUSTER, 2, check_memory=False)
        after = backend.run(from_json(to_json(program)), _CLUSTER, 2,
                            check_memory=False)
        assert after.elapsed == before.elapsed
        assert after.phase_seconds == before.phase_seconds

    def test_unknown_record_rejected(self):
        data = to_dict(_toy_program())
        data["body"][0]["body"][0]["ops"][0]["op"] = "quantum"
        from repro.ir import from_dict

        with pytest.raises(ConfigurationError):
            from_dict(data)


class TestGrid:
    def test_most_square_factorization(self):
        assert grid_dims(12, 2) == (4, 3)
        assert grid_dims(48, 2) == (8, 6)
        assert grid_dims(48, 3) == (4, 4, 3)
        assert grid_dims(8, 3) == (2, 2, 2)

    def test_prime_degenerates_to_chain(self):
        assert grid_dims(7, 2) == (7, 1)
        # interior ranks of the chain see exactly 2 neighbors
        assert sorted(grid_neighbors(3, 7)) == [2, 4]

    def test_neighbor_symmetry(self):
        for p in (4, 6, 8, 12):
            for ndims in (1, 2, 3):
                for r in range(p):
                    for nb in grid_neighbors(r, p, ndims=ndims):
                        assert r in grid_neighbors(nb, p, ndims=ndims)

    def test_2d_interior_rank_has_four_neighbors(self):
        # 12 ranks -> 4x3 grid; rank at row 1, col 1 is interior
        dims = grid_dims(12, 2)
        interior = 1 * dims[1] + 1
        assert len(grid_neighbors(interior, 12)) == 4

    def test_fractional_count_subsampling(self):
        op = CommOp("gather", 64, count=1.0 / 3.0)
        reps = [_comm_reps(op, step) for step in range(6)]
        assert reps == [1, 0, 0, 1, 0, 0]
        assert _comm_reps(CommOp("gather", 64, count=2.4), 0) == 2


class TestBackendRegistry:
    def test_get_backend(self):
        assert isinstance(get_backend("analytic"), AnalyticBackend)
        assert isinstance(get_backend("fastcoll"), FastCollBackend)
        assert isinstance(get_backend("des"), DESBackend)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            get_backend("quantum")
        with pytest.raises(ConfigurationError):
            set_default_backend("quantum")

    def test_default_backend_round_trip(self):
        prev = default_backend_name()
        try:
            set_default_backend("fastcoll")
            assert default_backend_name() == "fastcoll"
        finally:
            set_default_backend(prev)
        assert default_backend_name() == prev


class TestAnalyticParity:
    """The refactor's contract: the IR path is the old arithmetic."""

    @pytest.mark.parametrize("app_name", ["alya", "nemo", "wrf"])
    def test_time_step_equals_direct_backend_run(self, app_name):
        from repro.apps import get_app

        app = get_app(app_name)
        n_nodes = 16
        timing = app.time_step(_CLUSTER, n_nodes)
        mapping = app.mapping(_CLUSTER, n_nodes)
        program = app.program(mapping)
        result = AnalyticBackend().run(
            program, _CLUSTER, n_nodes,
            mapping=mapping, binary=app.build(_CLUSTER), check_memory=False)
        assert result.phase_seconds == timing.phase_seconds
        assert result.phase_compute == timing.phase_compute
        assert result.phase_comm == timing.phase_comm
        assert result.phase_flops_time == timing.phase_flops_time
        assert result.phase_bytes_time == timing.phase_bytes_time
        assert result.elapsed == timing.total

    def test_compile_phases_structure(self):
        from repro.apps import get_app

        app = get_app("wrf")
        mapping = app.mapping(_CLUSTER, 16)
        program = app.program(mapping, steps=5)
        assert program.steps == 5
        (loop,) = program.body
        assert isinstance(loop, Loop) and loop.count == 5
        assert program.phase_names() == [
            ph.name for ph in app.phases(mapping)]

    def test_serial_seconds_charged_once(self):
        program = Program(
            name="serial",
            body=(Phase("p", (SerialOp(seconds=0.25),)),),
        )
        result = AnalyticBackend().run(program, _CLUSTER, 4,
                                       check_memory=False)
        assert result.elapsed == 0.25


class TestAppRun:
    def test_run_under_named_backend(self):
        from repro.apps import get_app

        app = get_app("gromacs")
        result = app.run(_CLUSTER, 16, backend="analytic")
        assert result.backend == "analytic"
        assert result.elapsed > 0
        timing = app.time_step(_CLUSTER, 16)
        assert result.elapsed == timing.total

    def test_time_step_via_des_backend_band(self):
        from repro.apps import get_app

        app = get_app("gromacs")
        analytic = app.time_step(_CLUSTER, 2).total
        des = app.time_step(_CLUSTER, 2, backend="des").total
        assert 0.8 < des / analytic < 1.25


class TestHarnessCacheKey:
    def test_backend_in_cache_key(self):
        from repro.harness.parallel import cache_key

        assert cache_key("fig2", "analytic") != cache_key("fig2", "des")
        assert cache_key("fig2") == cache_key("fig2", "analytic")
