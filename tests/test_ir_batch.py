"""Batched analytic backend: tapes, caches, and bitwise parity.

The contract under test is the differential gate of the batch subsystem:
``BatchAnalyticBackend`` must reproduce the scalar ``AnalyticBackend``
**bit-for-bit** — same phase breakdowns, same elapsed, same errors — on
every program shape the repo prices, whether points arrive one at a time
through ``run`` or stacked through ``run_batch``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.apps import ALL_APPS, get_app
from repro.ir import (
    AnalyticBackend,
    BatchAnalyticBackend,
    BatchJob,
    CommOp,
    ComputeOp,
    Loop,
    Phase,
    Program,
    compile_tape,
    get_backend,
)
from repro.ir.batch import clear_caches, shared_batch_backend
from repro.machine.presets import cte_arm, marenostrum4
from repro.network.model import network_for
from repro.util.errors import ConfigurationError

from .strategies import ir_programs

_ARM = cte_arm(192)
_MN4 = marenostrum4(192)


def _assert_results_equal(a, b):
    assert a.phase_seconds == b.phase_seconds
    assert a.phase_compute == b.phase_compute
    assert a.phase_comm == b.phase_comm
    assert a.phase_flops_time == b.phase_flops_time
    assert a.phase_bytes_time == b.phase_bytes_time
    assert a.elapsed == b.elapsed
    assert a.n_ranks == b.n_ranks


class TestBitwiseParity:
    @pytest.mark.parametrize("name", sorted(ALL_APPS))
    @pytest.mark.parametrize("cluster", [_ARM, _MN4], ids=["arm", "mn4"])
    def test_apps_match_scalar(self, name, cluster):
        app = get_app(name)
        binary = app.build(cluster)
        batch = BatchAnalyticBackend()
        scalar = AnalyticBackend()
        for n in (32, 64, 128):
            mapping = app.mapping(cluster, n)
            program = app.program(mapping, steps=1)
            kwargs = dict(mapping=mapping, binary=binary,
                          check_memory=False)
            _assert_results_equal(
                scalar.run(program, cluster, n, **kwargs),
                batch.run(program, cluster, n, **kwargs),
            )

    def test_run_batch_matches_per_point_runs(self):
        app = get_app("nemo")
        binary = app.build(_ARM)
        nodes = [8, 16, 32, 64]
        jobs, singles = [], []
        backend = BatchAnalyticBackend()
        for n in nodes:
            mapping = app.mapping(_ARM, n)
            program = app.program(mapping, steps=1)
            jobs.append(BatchJob(program, _ARM, n, mapping=mapping,
                                 binary=binary, check_memory=False))
            singles.append(backend.run(program, _ARM, n, mapping=mapping,
                                       binary=binary, check_memory=False))
        for single, batched in zip(singles, backend.run_batch(jobs)):
            _assert_results_equal(single, batched)

    def test_explicit_network_matches_scalar(self):
        program = Program(
            name="net",
            body=(Phase("x", (CommOp("allreduce", 4096),
                              CommOp("halo", 65536, neighbors=6))),),
        )
        network = network_for(_ARM, n_nodes=16)
        scalar = AnalyticBackend().run(program, _ARM, 16, network=network,
                                       check_memory=False)
        batched = BatchAnalyticBackend().run(program, _ARM, 16,
                                             network=network,
                                             check_memory=False)
        _assert_results_equal(scalar, batched)

    def test_osu_allreduce_scaling_matches_scalar(self):
        from repro.bench.osu import allreduce_scaling

        nodes = [2, 4, 8, 16, 32]
        out = allreduce_scaling(_ARM, nodes)
        program = Program(
            name="osu-allreduce",
            body=(Phase("allreduce", (CommOp("allreduce", 8),)),),
            ranks_per_node=48,
        )
        scalar = AnalyticBackend()
        for n in nodes:
            result = scalar.run(program, _ARM, n, check_memory=False)
            assert out[n] == result.phase_comm["allreduce"]


@settings(max_examples=40, deadline=None)
@given(program=ir_programs(rich=True))
def test_random_programs_match_scalar_bitwise(program):
    scalar = AnalyticBackend().run(program, _ARM, 4, check_memory=False)
    batched = BatchAnalyticBackend().run(program, _ARM, 4,
                                         check_memory=False)
    _assert_results_equal(scalar, batched)


class TestOverrides:
    def _program(self):
        return Program(
            name="knobs",
            body=(Phase("x", (ComputeOp(seconds=1e-3),
                              CommOp("allreduce", 8),)),),
        )

    def test_compute_scale(self):
        backend = BatchAnalyticBackend()
        base = backend.run(self._program(), _ARM, 4, check_memory=False)
        out = backend.run(self._program(), _ARM, 4, check_memory=False,
                          overrides={"compute_scale": 2.0})
        assert out.phase_compute["x"] == pytest.approx(
            2.0 * base.phase_compute["x"])
        assert out.phase_comm["x"] == base.phase_comm["x"]

    def test_comm_scale(self):
        backend = BatchAnalyticBackend()
        base = backend.run(self._program(), _ARM, 4, check_memory=False)
        out = backend.run(self._program(), _ARM, 4, check_memory=False,
                          overrides={"comm_scale": 3.0})
        assert out.phase_comm["x"] == pytest.approx(
            3.0 * base.phase_comm["x"])
        assert out.phase_compute["x"] == base.phase_compute["x"]

    def test_identity_overrides_bitwise_noop(self):
        backend = BatchAnalyticBackend()
        base = backend.run(self._program(), _ARM, 4, check_memory=False)
        out = backend.run(self._program(), _ARM, 4, check_memory=False,
                          overrides={"compute_scale": 1.0,
                                     "comm_scale": 1.0})
        _assert_results_equal(base, out)

    def test_unknown_override_rejected(self):
        with pytest.raises(ConfigurationError, match="override"):
            BatchAnalyticBackend().run(
                self._program(), _ARM, 4, check_memory=False,
                overrides={"warp_factor": 9.0})


class TestTapeAndCaches:
    def test_tape_cached_per_program(self):
        program = Program(
            name="tape",
            body=(Loop(3, (Phase("x", (ComputeOp(seconds=1e-6),)),)),),
            steps=3,
        )
        assert compile_tape(program) is compile_tape(program)

    def test_registry_exposes_batch(self):
        assert isinstance(get_backend("batch"), BatchAnalyticBackend)

    def test_shared_backend_is_singleton(self):
        assert shared_batch_backend() is shared_batch_backend()

    def test_clear_caches_preserves_results(self):
        program = Program(
            name="cc", body=(Phase("x", (CommOp("ring", 4096),)),))
        backend = BatchAnalyticBackend()
        before = backend.run(program, _ARM, 8, check_memory=False)
        clear_caches()
        after = backend.run(program, _ARM, 8, check_memory=False)
        _assert_results_equal(before, after)

    def test_sweep_memo_hits_are_copies(self):
        app = get_app("alya")
        first = app.sweep_timings(_ARM, [16, 32])
        first[16].phase_seconds["tamper"] = 1.0
        again = app.sweep_timings(_ARM, [16, 32])
        assert "tamper" not in again[16].phase_seconds

    def test_unknown_run_kwarg_rejected(self):
        program = Program(
            name="kw", body=(Phase("x", (ComputeOp(seconds=1e-6),)),))
        with pytest.raises(ConfigurationError, match="fault_schedule"):
            BatchAnalyticBackend().run(program, _ARM, 4,
                                       check_memory=False,
                                       fault_schedule=None)
