"""Sharded parallel DES: partition math, lookahead conservatism, and the
differential guarantee that a sharded run reproduces the single-engine
run bit-exactly for any shard count and worker schedule."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import get_app
from repro.des.shard import (
    ShardPlan,
    ShardWorld,
    ShardedSpec,
    cross_shard_rank_pairs,
    lookahead,
    run_sharded,
)
from repro.des.shard.driver import _actor_key
from repro.ir import DESBackend, FastCollBackend, set_backend_options
from repro.ir.lower import lower
from repro.machine import cte_arm
from repro.network.model import network_for
from repro.resilience.policy import ResiliencePolicy
from repro.resilience.schedule import (
    FaultSchedule,
    LinkDegrade,
    LinkRecover,
    NodeCrash,
)
from repro.simmpi.mapping import RankMapping
from repro.simmpi.world import World
from repro.util.errors import ConfigurationError, SimulationError

N_NODES = 4
RANKS_PER_NODE = 8  # small world: fast tests, still multi-node


@pytest.fixture(scope="module")
def cluster():
    return cte_arm(N_NODES)


@pytest.fixture(scope="module")
def mapping(cluster):
    return RankMapping(cluster, N_NODES, ranks_per_node=RANKS_PER_NODE)


@pytest.fixture(scope="module")
def program(mapping):
    return get_app("nemo").program(mapping, steps=2)


@pytest.fixture(scope="module")
def binary(cluster):
    return get_app("nemo").build(cluster)


def canonical_trace(trace) -> bytes:
    """Byte form of a trace in the shard-merge canonical order."""
    records = sorted(
        trace.records, key=lambda r: (r.start, _actor_key(r.actor))
    )
    return "\n".join(repr(r) for r in records).encode()


def run_unsharded(program, mapping, binary, **world_kwargs) -> tuple:
    world = World(mapping, **world_kwargs)
    result = world.run(lower(program, mapping, binary))
    return result, world


class TestShardPlan:
    @given(
        n_nodes=st.integers(1, 24),
        rpn=st.integers(1, 6),
        n_shards=st.integers(1, 24),
    )
    @settings(max_examples=60, deadline=None)
    def test_partition_covers_ranks_exactly_once(
        self, n_nodes, rpn, n_shards
    ):
        cluster = cte_arm(max(n_nodes, 1))
        mapping = RankMapping(cluster, n_nodes, ranks_per_node=rpn)
        if n_shards > n_nodes:
            with pytest.raises(ConfigurationError):
                ShardPlan.build(mapping, n_shards)
            return
        plan = ShardPlan.build(mapping, n_shards)
        seen: list[int] = []
        for shard in range(n_shards):
            local = plan.local_ranks(shard)
            assert len(local) > 0
            for rank in local:
                assert plan.shard_of_rank(rank) == shard
            seen.extend(local)
        assert seen == list(range(mapping.n_ranks))

    def test_cmg_granularity_splits_nodes_into_domains(self, mapping):
        plan = ShardPlan.build(mapping, 8, granularity="cmg")
        # 4 nodes x 4 CMGs = 16 units, 2 ranks each.
        assert plan.n_units == 16
        assert plan.ranks_per_unit == 2
        assert plan.splits_nodes

    def test_cmg_needs_divisible_ranks(self, cluster):
        bad = RankMapping(cluster, N_NODES, ranks_per_node=6)
        with pytest.raises(ConfigurationError):
            ShardPlan.build(bad, 2, granularity="cmg")

    def test_unknown_granularity_rejected(self, mapping):
        with pytest.raises(ConfigurationError):
            ShardPlan.build(mapping, 2, granularity="socket")


class TestLookahead:
    @given(
        n_nodes=st.integers(2, 12),
        rpn=st.integers(1, 4),
        n_shards=st.integers(2, 12),
        size=st.integers(1, 1 << 22),
        factor=st.floats(0.0, 1.0),
        node=st.integers(0, 11),
    )
    @settings(max_examples=40, deadline=None)
    def test_no_cross_shard_message_beats_the_window(
        self, n_nodes, rpn, n_shards, size, factor, node
    ):
        """The heart of conservatism: no cross-shard transfer — any size,
        any hop count, any live fault degradation — can complete in less
        than one lookahead, so a window can never deliver out of order."""
        n_shards = min(n_shards, n_nodes)
        cluster = cte_arm(n_nodes)
        mapping = RankMapping(cluster, n_nodes, ranks_per_node=rpn)
        plan = ShardPlan.build(mapping, n_shards)
        network = network_for(cluster, n_nodes=n_nodes)
        la = lookahead(network, mapping, plan)
        assert 0.0 < la < float("inf")
        # Mid-run degradation only ever slows messages down.
        network.apply_fault_transition(
            lambda fm: fm.degrade_sender(node % n_nodes, factor)
        )
        for a in range(n_nodes):
            for b in range(n_nodes):
                if a == b or plan.shard_of_node(a) == plan.shard_of_node(b):
                    continue
                assert network.p2p_time(a, b, size) >= la

    def test_channel_inventory_refines_the_bound(self, program, mapping):
        plan = ShardPlan.build(mapping, 2)
        pairs = cross_shard_rank_pairs(program, plan)
        # NEMO's lowering carries world collectives: the inventory must
        # refuse to claim completeness rather than under-approximate.
        assert pairs is None

    def test_empty_inventory_gives_finite_window(self, mapping):
        plan = ShardPlan.build(mapping, 2)
        network = network_for(mapping.cluster, n_nodes=N_NODES)
        la = lookahead(network, mapping, plan, rank_pairs=set())
        assert 0.0 < la < float("inf")


class TestDifferential:
    """Sharded == unsharded, to the byte, for any shard/worker count."""

    def test_shard_counts_reproduce_unsharded(
        self, program, mapping, binary
    ):
        base, world = run_unsharded(program, mapping, binary, trace=True)
        base_bytes = canonical_trace(base.trace)
        for n_shards in (1, 2, 3, 4):
            spec = ShardedSpec(
                program=program, mapping=mapping, n_shards=n_shards,
                binary=binary, world_kwargs={"trace": True},
            )
            result, stats = run_sharded(spec)
            assert result.elapsed == pytest.approx(base.elapsed, rel=1e-9)
            assert result.rank_results == base.rank_results
            assert result.trace.totals() == base.trace.totals()
            assert canonical_trace(result.trace) == base_bytes
            assert stats.n_shards == n_shards
            if n_shards > 1:
                assert stats.cross_messages > 0

    def test_merge_is_byte_identical_across_shard_counts(
        self, program, mapping, binary
    ):
        def run(n):
            spec = ShardedSpec(
                program=program, mapping=mapping, n_shards=n,
                binary=binary, world_kwargs={"trace": True},
            )
            return run_sharded(spec)[0]

        r2, r4 = run(2), run(4)
        assert r2.trace.records == r4.trace.records
        assert canonical_trace(r2.trace) == canonical_trace(r4.trace)
        assert r2.elapsed == r4.elapsed
        assert r2.rank_results == r4.rank_results

    def test_worker_processes_reproduce_sequential(
        self, program, mapping, binary
    ):
        spec = ShardedSpec(
            program=program, mapping=mapping, n_shards=4,
            binary=binary, world_kwargs={"trace": True},
        )
        seq, _ = run_sharded(spec, workers=0)
        par, stats = run_sharded(spec, workers=2)
        assert par.elapsed == seq.elapsed
        assert par.trace.records == seq.trace.records
        assert par.rank_results == seq.rank_results
        assert stats.workers == 2
        assert all(w >= 0.0 for w in stats.shard_wall_s.values())

    def test_cmg_granularity_reproduces_unsharded(
        self, program, mapping, binary
    ):
        base, _ = run_unsharded(program, mapping, binary, trace=True)
        spec = ShardedSpec(
            program=program, mapping=mapping, n_shards=8,
            granularity="cmg", binary=binary,
            world_kwargs={"trace": True},
        )
        result, stats = run_sharded(spec)
        assert stats.granularity == "cmg"
        assert result.elapsed == pytest.approx(base.elapsed, rel=1e-9)
        assert canonical_trace(result.trace) == canonical_trace(base.trace)

    def test_cross_shard_fault_schedule(self, program, mapping, binary):
        schedule = FaultSchedule((
            LinkDegrade(at=0.013, node=3, factor=0.25),
            NodeCrash(at=0.05, node=1),
            LinkRecover(at=0.09, node=3),
        ))
        kwargs = dict(
            trace=True,
            fault_schedule=schedule,
            resilience=ResiliencePolicy(),
        )
        base, _ = run_unsharded(program, mapping, binary, **kwargs)
        for n_shards in (2, 4):
            spec = ShardedSpec(
                program=program, mapping=mapping, n_shards=n_shards,
                binary=binary, world_kwargs=dict(kwargs),
            )
            result, _ = run_sharded(spec)
            assert result.elapsed == pytest.approx(base.elapsed, rel=1e-9)
            assert result.trace.totals() == base.trace.totals()
            got, want = result.resilience, base.resilience
            assert got.failed_nodes == want.failed_nodes
            assert sorted(got.failed_ranks) == sorted(want.failed_ranks)
            assert len(got.detections) == len(want.detections)
            # The fused crash report names every rank of the dead node.
            (crash,) = got.report.by_rule("RES001")
            assert crash.details["ranks"] == [
                r for r in range(mapping.n_ranks)
                if mapping.node_of(r) == 1
            ]

    def test_compute_noise_is_shard_invariant(
        self, program, mapping, binary
    ):
        kwargs = dict(trace=True, compute_noise=0.05, noise_seed=7)
        base, _ = run_unsharded(program, mapping, binary, **kwargs)
        spec = ShardedSpec(
            program=program, mapping=mapping, n_shards=4,
            binary=binary, world_kwargs=dict(kwargs),
        )
        result, _ = run_sharded(spec)
        assert result.elapsed == base.elapsed
        assert result.trace.totals() == base.trace.totals()

    def test_verify_runs_the_checker_over_the_merged_log(
        self, program, mapping, binary
    ):
        spec = ShardedSpec(
            program=program, mapping=mapping, n_shards=2,
            binary=binary, verify=True, world_kwargs={"trace": False},
        )
        result, _ = run_sharded(spec)
        assert result.diagnostics is not None
        assert result.diagnostics.clean


class TestGuards:
    def test_nic_contention_is_rejected(self, program, mapping, binary):
        spec = ShardedSpec(
            program=program, mapping=mapping, n_shards=2, binary=binary,
            world_kwargs={"nic_contention": True},
        )
        with pytest.raises(ConfigurationError, match="nic_contention"):
            run_sharded(spec)

    def test_injecting_into_the_past_is_an_error(self, mapping):
        from repro.des.shard.subworld import CrossMsg

        plan = ShardPlan.build(mapping, 2)
        world = ShardWorld(mapping, plan, 0, trace=False)
        world.engine.run_window(1.0)
        msg = CrossMsg(time=0.5, src_shard=1, seq=1, dst_rank=0,
                       src=17, key=(0, 5), payload=b"x")
        with pytest.raises(SimulationError, match="lookahead"):
            world.inject(msg)

    def test_remote_sends_land_in_the_outbox(self, mapping):
        plan = ShardPlan.build(mapping, 2)
        world = ShardWorld(mapping, plan, 0, trace=False)
        remote = plan.local_ranks(1)[0]
        world.schedule_delivery(remote, 3, (0, 9), b"p", 5e-6)
        local = plan.local_ranks(0)[0]
        world.schedule_delivery(local, 3, (0, 9), b"p", 5e-6)
        (msg,) = world.drain_outbox()
        assert msg.dst_rank == remote
        assert msg.time == pytest.approx(5e-6)


class TestBackendWiring:
    def test_des_backend_shards_match_single_engine(
        self, program, cluster, mapping
    ):
        backend = DESBackend()
        common = dict(mapping=mapping, check_memory=False)
        plain = backend.run(program, cluster, N_NODES, **common)
        sharded = backend.run(program, cluster, N_NODES, shards=4,
                              shard_workers=0, **common)
        assert sharded.elapsed == pytest.approx(plain.elapsed, rel=1e-9)
        assert sharded.phase_seconds == plain.phase_seconds
        assert plain.shard_stats is None
        assert sharded.shard_stats is not None
        assert sharded.shard_stats["n_shards"] == 4
        assert sharded.shard_stats["events"] > 0

    def test_shard_count_clamps_to_partition_size(
        self, program, cluster, mapping
    ):
        # One --des-shards setting must work across a node-count sweep:
        # a request exceeding the unit count clamps instead of erroring,
        # and a 1-unit-per-shard-impossible point (shards > nodes with
        # the clamp landing on 1) falls back to the single engine.
        backend = DESBackend()
        common = dict(mapping=mapping, check_memory=False)
        plain = backend.run(program, cluster, N_NODES, **common)
        clamped = backend.run(program, cluster, N_NODES,
                              shards=3 * N_NODES, **common)
        assert clamped.shard_stats is not None
        assert clamped.shard_stats["n_shards"] == N_NODES
        assert clamped.elapsed == plain.elapsed

    def test_backend_options_steer_the_des_backend(
        self, program, cluster, mapping
    ):
        backend = DESBackend()
        set_backend_options(des_shards=2)
        try:
            result = backend.run(program, cluster, N_NODES,
                                 mapping=mapping, check_memory=False)
        finally:
            set_backend_options(des_shards=None)
        assert result.shard_stats is not None
        assert result.shard_stats["n_shards"] == 2

    def test_hybrid_takes_closed_forms_on_clean_programs(
        self, program, cluster, mapping
    ):
        common = dict(mapping=mapping, check_memory=False)
        hybrid = DESBackend().run(program, cluster, N_NODES,
                                  hybrid=True, **common)
        fastcoll = FastCollBackend().run(program, cluster, N_NODES,
                                         **common)
        assert hybrid.elapsed == fastcoll.elapsed

    def test_hybrid_with_faults_matches_full_simulation(
        self, program, cluster, mapping
    ):
        schedule = FaultSchedule((
            LinkDegrade(at=0.01, node=2, factor=0.5),
            LinkRecover(at=0.05, node=2),
        ))
        common = dict(mapping=mapping, check_memory=False,
                      fault_schedule=schedule,
                      resilience=ResiliencePolicy())
        full = DESBackend().run(program, cluster, N_NODES, **common)
        hybrid = DESBackend().run(program, cluster, N_NODES,
                                  hybrid=True, **common)
        assert hybrid.elapsed == pytest.approx(full.elapsed, rel=1e-9)
