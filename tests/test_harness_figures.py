"""Full experiment sweep: every paper table/figure's expectations must hold.

This is the repository's reproduction gate — the same checks EXPERIMENTS.md
records.  Slower experiments (all-pairs network maps, application sweeps)
run once here; individual fast ones are covered in test_analysis_harness.
"""

import pytest

from repro.harness import list_experiments, run_experiment

ALL_EXPERIMENTS = list_experiments()


@pytest.mark.parametrize("exp_id", ALL_EXPERIMENTS)
def test_experiment_expectations_hold(exp_id):
    result = run_experiment(exp_id)
    assert result.expectations, f"{exp_id} asserts nothing"
    failed = [e.render() for e in result.expectations if not e.holds]
    assert not failed, f"{exp_id} deviations:\n" + "\n".join(failed)


@pytest.mark.parametrize("exp_id", ALL_EXPERIMENTS)
def test_experiment_renders_without_error(exp_id):
    text = run_experiment(exp_id).render()
    assert exp_id in text
