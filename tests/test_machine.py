"""Machine models: ISAs, cores, caches, memory, NUMA, nodes, presets.

The Table I assertions here are exact — peaks are first-principles.
"""

import pytest

from repro.machine import (
    AVX512,
    NEON,
    SCALAR,
    SVE512,
    CacheHierarchy,
    CoreModel,
    DType,
    ExecMode,
    MemoryModel,
    cte_arm,
    get_preset,
    lanes,
    marenostrum4,
    table1,
)
from repro.util.errors import ConfigurationError
from repro.util.units import GB, KIB, MIB


class TestISA:
    def test_lane_counts(self):
        assert SVE512.lanes(DType.DOUBLE) == 8
        assert SVE512.lanes(DType.SINGLE) == 16
        assert SVE512.lanes(DType.HALF) == 32
        assert NEON.lanes(DType.DOUBLE) == 2
        assert AVX512.lanes(DType.DOUBLE) == 8

    def test_avx512_half_promotes_to_single(self):
        assert not AVX512.supports(DType.HALF)
        assert AVX512.effective_dtype(DType.HALF) is DType.SINGLE
        assert AVX512.lanes(DType.HALF) == AVX512.lanes(DType.SINGLE) == 16

    def test_sve_supports_fp16(self):
        assert SVE512.supports(DType.HALF)

    def test_scalar_mode_single_lane(self):
        assert lanes(SVE512, DType.DOUBLE, ExecMode.SCALAR) == 1
        assert lanes(SCALAR, DType.HALF, ExecMode.VECTOR) == 4  # 64-bit reg


class TestCoreModel:
    def test_a64fx_peaks_match_table1(self, arm):
        core = arm.node.core_model
        assert core.peak_flops(DType.DOUBLE) == pytest.approx(70.4e9)
        assert core.peak_flops(DType.SINGLE) == pytest.approx(140.8e9)
        assert core.peak_flops(DType.HALF) == pytest.approx(281.6e9)
        assert core.peak_flops(DType.DOUBLE, ExecMode.SCALAR) == pytest.approx(8.8e9)

    def test_skylake_peaks_match_table1(self, mn4):
        core = mn4.node.core_model
        assert core.peak_flops(DType.DOUBLE) == pytest.approx(67.2e9)
        assert core.peak_flops(DType.HALF) == pytest.approx(134.4e9)  # promoted

    def test_ukernel_near_peak(self, arm):
        core = arm.node.core_model
        ratio = core.ukernel_flops(DType.DOUBLE, ExecMode.VECTOR) / core.peak_flops()
        assert 0.95 < ratio < 1.0

    def test_sustained_between_scalar_and_vector(self, arm):
        core = arm.node.core_model
        s = core.sustained_flops(vector_fraction=0.5, vector_efficiency=0.3)
        scalar_only = core.sustained_flops(vector_fraction=0.0,
                                           vector_efficiency=0.3)
        assert scalar_only < s < core.peak_flops()

    def test_sustained_monotone_in_vector_fraction(self, arm):
        core = arm.node.core_model
        rates = [
            core.sustained_flops(vector_fraction=v, vector_efficiency=0.3)
            for v in (0.0, 0.25, 0.5, 0.75, 1.0)
        ]
        assert rates == sorted(rates)

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            CoreModel(name="x", frequency_hz=-1)
        with pytest.raises(ConfigurationError):
            CoreModel(name="x", frequency_hz=1e9, scalar_ooo_efficiency=0.0)

    def test_vector_fraction_bounds(self, arm):
        with pytest.raises(ConfigurationError):
            arm.node.core_model.sustained_flops(vector_fraction=1.5)


class TestCaches:
    def test_a64fx_hierarchy(self, arm):
        caches = arm.node.caches
        assert caches.level("L1").size_bytes == 64 * KIB
        assert caches.level("L2").total_bytes == 32 * MIB
        assert caches.last_level.name == "L2"

    def test_stream_rule(self, arm, mn4):
        # E >= max(1e7, 4S/8)
        assert arm.node.caches.stream_min_elements() == max(
            10**7, 4 * 32 * MIB // 8
        )
        assert mn4.node.caches.stream_min_elements() == max(
            10**7, 4 * 66 * MIB // 8
        )

    def test_unknown_level_rejected(self, arm):
        with pytest.raises(ConfigurationError):
            arm.node.caches.level("L9")

    def test_fits_in(self, mn4):
        assert mn4.node.caches.fits_in(512 * KIB, "L2")
        assert not mn4.node.caches.fits_in(2 * MIB, "L2")

    def test_empty_hierarchy_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheHierarchy(levels=())


class TestMemoryAndNUMA:
    def test_hbm_peak(self, arm):
        domain = arm.node.domains[0]
        assert domain.memory.peak_bandwidth == pytest.approx(256e9)
        assert domain.memory.capacity_bytes == 8 * GB

    def test_ddr4_peak(self, mn4):
        domain = mn4.node.domains[0]
        assert domain.memory.peak_bandwidth == pytest.approx(128e9)

    def test_local_stream_bw_saturates(self, arm):
        d = arm.node.domains[0]
        assert d.local_stream_bw(1) < d.local_stream_bw(6)
        assert d.local_stream_bw(12) == pytest.approx(
            d.memory.sustainable_bandwidth
        )
        assert d.local_stream_bw(0) == 0.0

    def test_invalid_memory_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryModel("x", channels=0, channel_bw=1.0, capacity_bytes=1)


class TestNode:
    def test_core_counts(self, arm, mn4):
        assert arm.node.cores == 48 and mn4.node.cores == 48
        assert len(arm.node.domains) == 4 and len(mn4.node.domains) == 2

    def test_node_peaks_match_table1(self, arm, mn4):
        assert arm.node.peak_flops == pytest.approx(3379.2e9)
        assert mn4.node.peak_flops == pytest.approx(3225.6e9)
        assert arm.node.peak_memory_bandwidth == pytest.approx(1024e9)
        assert mn4.node.peak_memory_bandwidth == pytest.approx(256e9)

    def test_memory_per_node(self, arm, mn4):
        assert arm.node.memory_bytes == 32 * GB
        assert mn4.node.memory_bytes == 96 * GB

    def test_domain_of_core(self, arm):
        assert arm.node.domain_of_core(0).index == 0
        assert arm.node.domain_of_core(11).index == 0
        assert arm.node.domain_of_core(12).index == 1
        assert arm.node.domain_of_core(47).index == 3

    def test_core_out_of_range(self, arm):
        with pytest.raises(ConfigurationError):
            arm.node.domain_of_core(48)

    def test_cores_of_domain(self, arm):
        assert list(arm.node.cores_of_domain(1)) == list(range(12, 24))


class TestClusterAndPresets:
    def test_sizes(self, arm, mn4):
        assert arm.n_nodes == 192 and mn4.n_nodes == 192
        assert cte_arm().total_cores == 192 * 48
        assert marenostrum4().n_nodes == 3456

    def test_cluster_peaks(self, arm):
        assert arm.peak_flops == pytest.approx(192 * 3379.2e9)
        assert arm.peak_flops_nodes(10) == pytest.approx(10 * 3379.2e9)

    def test_partition_bounds(self, arm):
        with pytest.raises(ConfigurationError):
            arm.peak_flops_nodes(500)

    def test_get_preset_aliases(self):
        assert get_preset("CTE-Arm").name == "CTE-Arm"
        assert get_preset("mn4").name == "MareNostrum 4"
        with pytest.raises(KeyError):
            get_preset("summit")

    def test_colors_match_paper(self, arm, mn4):
        assert arm.plot_color == "red" and mn4.plot_color == "blue"

    def test_table1_renders_key_rows(self):
        text = table1().render()
        for expected in ("70.40", "67.20", "3379.20", "3225.60", "TofuD",
                         "Intel OmniPath", "HBM", "DDR4-2666", "192", "3456"):
            assert expected in text
