"""Variability campaign: uniformity verification and fault recovery."""

import numpy as np
import pytest

from repro.bench.variability import (
    HeterogeneityModel,
    analyze_sweep,
    healthy,
    random_heterogeneity,
    stream_repetition_cv,
    ukernel_sweep,
)
from repro.machine import cte_arm
from repro.util.errors import ConfigurationError


class TestHeterogeneityModel:
    def test_healthy_all_ones(self):
        h = healthy()
        assert h.factor(0, 0) == 1.0 and not h.degraded

    def test_factors_compose(self):
        h = HeterogeneityModel(node_factors={1: 0.5},
                               core_factors={(1, 3): 0.5})
        assert h.factor(1, 3) == 0.25
        assert h.factor(1, 0) == 0.5
        assert h.factor(0, 3) == 1.0

    def test_random_reproducible(self):
        a = random_heterogeneity(10, 48, slow_nodes=2, seed=1)
        b = random_heterogeneity(10, 48, slow_nodes=2, seed=1)
        assert a.node_factors == b.node_factors

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            random_heterogeneity(10, 48, slow_nodes=1, factor_range=(0.0, 0.5))


class TestSweepAndAnalysis:
    def test_healthy_sweep_uniform(self):
        arm = cte_arm(8)
        m = ukernel_sweep(arm)
        assert m.shape == (8, 48)
        report = analyze_sweep(m)
        assert report.uniform
        # the paper's statement: all cores at the (same) near-peak value
        assert np.allclose(m, m[0, 0])

    def test_slow_node_detected(self):
        arm = cte_arm(8)
        het = HeterogeneityModel(node_factors={3: 0.7})
        report = analyze_sweep(ukernel_sweep(arm, heterogeneity=het))
        assert report.slow_nodes == [3]
        assert report.slow_cores == []

    def test_slow_core_detected_not_as_node(self):
        arm = cte_arm(8)
        het = HeterogeneityModel(core_factors={(2, 17): 0.6})
        report = analyze_sweep(ukernel_sweep(arm, heterogeneity=het))
        assert report.slow_nodes == []
        assert report.slow_cores == [(2, 17)]

    def test_mixed_faults_recovered(self):
        arm = cte_arm(16)
        het = random_heterogeneity(16, 48, slow_nodes=2, slow_cores=4, seed=7)
        report = analyze_sweep(ukernel_sweep(arm, heterogeneity=het))
        assert report.slow_nodes == sorted(het.node_factors)
        assert sorted(report.slow_cores) == sorted(het.core_factors)

    def test_analysis_rejects_1d(self):
        with pytest.raises(ConfigurationError):
            analyze_sweep(np.ones(5))


class TestStreamRepetitions:
    def test_quiet_runs_have_zero_cv(self, arm):
        assert stream_repetition_cv(arm, noise=0.0) == 0.0

    def test_noise_raises_cv(self, arm):
        assert stream_repetition_cv(arm, noise=0.05, seed=1) > 0.005

    def test_needs_two_repetitions(self, arm):
        with pytest.raises(ConfigurationError):
            stream_repetition_cv(arm, repetitions=1)
