"""Coverage of corners: error hierarchy, trace reductions, world internals,
the tutorial's build-your-own-machine path."""

import numpy as np
import pytest

from repro.des.trace import TraceRecorder
from repro.machine import (
    CacheHierarchy,
    CacheLevel,
    ClusterModel,
    CoreModel,
    MemoryModel,
    NEON,
    NodeModel,
    NUMADomain,
    OnChipInterconnect,
    SVE512,
)
from repro.util.errors import (
    AllocationError,
    CompileError,
    CompileHang,
    ConfigurationError,
    DeadlockError,
    OutOfMemoryError,
    ReproError,
    RuntimeFailure,
    SimulationError,
    ToolchainError,
)
from repro.util.units import GB, KIB, MIB


class TestErrorHierarchy:
    def test_everything_is_a_repro_error(self):
        for exc in (ConfigurationError, SimulationError, DeadlockError,
                    ToolchainError, CompileError, CompileHang,
                    RuntimeFailure, AllocationError, OutOfMemoryError):
            assert issubclass(exc, ReproError)

    def test_compile_hang_is_compile_error(self):
        assert issubclass(CompileHang, CompileError)
        assert issubclass(OutOfMemoryError, AllocationError)
        assert issubclass(DeadlockError, SimulationError)

    def test_toolchain_error_carries_context(self):
        e = CompileError("boom", compiler="GNU/8", application="Alya")
        assert e.compiler == "GNU/8" and e.application == "Alya"


class TestTraceRecorder:
    def test_slowest_actor(self):
        tr = TraceRecorder()
        tr.record(0.0, 1.0, "rank0", "work")
        tr.record(0.0, 3.0, "rank1", "work")
        tr.record(3.0, 0.5, "rank1", "work")
        actor, total = tr.slowest_actor("work")
        assert actor == "rank1" and total == 3.5

    def test_unknown_phase_raises(self):
        with pytest.raises(KeyError):
            TraceRecorder().slowest_actor("nope")

    def test_disabled_recorder_stays_empty(self):
        tr = TraceRecorder(enabled=False)
        tr.record(0.0, 1.0, "a", "p")
        assert len(tr) == 0

    def test_phases_set(self):
        tr = TraceRecorder()
        tr.record(0, 1, "a", "x")
        tr.record(0, 1, "a", "y")
        assert tr.phases() == {"x", "y"}


class TestBuildYourOwnMachine:
    """The docs/TUTORIAL.md path must actually work."""

    @pytest.fixture(scope="class")
    def graviton(self):
        core = CoreModel(
            name="Graviton-HPC", frequency_hz=2.6e9, fma_pipes=2,
            vector_isas=(NEON, SVE512), scalar_ooo_efficiency=0.65,
            per_core_stream_bw=15e9, irregular_access_efficiency=0.9,
        )
        ddr5 = MemoryModel(technology="DDR5-5600", channels=8,
                           channel_bw=44.8e9, capacity_bytes=64 * GB,
                           stream_efficiency=0.82)
        domains = tuple(
            NUMADomain(index=i, kind="socket", cores=32, core_model=core,
                       memory=ddr5)
            for i in range(2)
        )
        node = NodeModel(
            name="Graviton node", sockets=2, domains=domains,
            caches=CacheHierarchy(levels=(
                CacheLevel("L1", 64 * KIB, shared_by=1, count=64),
                CacheLevel("L2", 1 * MIB, shared_by=1, count=64),
            )),
            interconnect=OnChipInterconnect(name="mesh", link_bandwidth=50e9,
                                            total_bandwidth=100e9),
            nic_bandwidth=25e9,
        )
        return ClusterModel(name="Graviton-HPC", integrator="ACME",
                            node=node, n_nodes=256, interconnect_name="EFA")

    def test_peaks(self, graviton):
        assert graviton.node.core_model.peak_flops() / 1e9 == pytest.approx(83.2)
        assert graviton.node.peak_memory_bandwidth / 1e9 == pytest.approx(716.8)

    def test_stream_model_works(self, graviton):
        from repro.smp import PagePolicy, bind_threads, stream_bandwidth

        bw = stream_bandwidth(bind_threads(graviton.node, 64),
                              PagePolicy.FIRST_TOUCH)
        assert bw == pytest.approx(graviton.node.sustainable_memory_bandwidth)

    def test_application_runs_on_it(self, graviton):
        from repro.apps import WRFModel
        from repro.network import FatTreeTopology, LinkModel, NetworkModel

        net = NetworkModel(
            topology=FatTreeTopology(256, nodes_per_leaf=16),
            link=LinkModel(name="EFA", bandwidth=25e9, latency_s=4e-6,
                           per_hop_latency_s=0.2e-6),
        )
        app = WRFModel()
        # The app's Table III defaults only know the paper machines; a new
        # cluster supplies its own toolchain — Intel-class as a stand-in.
        from repro.toolchain import INTEL_2018_4

        binary = INTEL_2018_4.build(app.name, app.kernels,
                                    language=app.language)
        t = app.time_step(graviton, 8, binary=binary, network=net)
        assert t.total > 0
        assert set(t.phase_seconds) == {"dynamics", "physics", "io"}

    def test_simulated_mpi_on_it(self, graviton):
        from repro.network import FatTreeTopology, LinkModel, NetworkModel
        from repro.simmpi import RankMapping, World

        net = NetworkModel(
            topology=FatTreeTopology(4, nodes_per_leaf=2),
            link=LinkModel(name="EFA", bandwidth=25e9, latency_s=4e-6,
                           per_hop_latency_s=0.2e-6),
        )
        world = World(RankMapping(graviton, n_nodes=4, ranks_per_node=2),
                      network=net)

        def program(comm):
            total = yield from comm.allreduce(np.array([1.0]))
            return float(total[0])

        res = world.run(program)
        assert all(v == 8.0 for v in res.rank_results)
