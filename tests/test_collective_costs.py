"""Cross-validation: analytic collective costs vs DES-executed schedules.

The 192-node application studies price collectives with the closed forms
in :mod:`repro.network.collectives`; these tests run the *same* algorithms
through the DES-backed simulated MPI at small scale and require agreement
within a factor-2 band (the analytic forms use a representative pair
distance, the DES schedule the exact ones).
"""

import pytest

from repro.network.collectives import CollectiveCosts
from repro.network.model import network_for
from repro.simmpi import RankMapping, VirtualPayload, World


def _des_time(arm_small, n_nodes, rpn, program):
    mapping = RankMapping(arm_small, n_nodes=n_nodes, ranks_per_node=rpn)
    world = World(mapping)
    return world.run(program).elapsed, mapping, world.network


@pytest.mark.parametrize("size", [8, 4096, 256 * 1024])
def test_allreduce_within_band(arm_small, size):
    def program(comm):
        yield from comm.allreduce(VirtualPayload(size))

    elapsed, mapping, net = _des_time(arm_small, 4, 2, program)
    analytic = CollectiveCosts(mapping=mapping, network=net).allreduce(size)
    assert analytic / 2.5 < elapsed < analytic * 2.5


@pytest.mark.parametrize("size", [64, 64 * 1024])
def test_bcast_within_band(arm_small, size):
    def program(comm):
        yield from comm.bcast(VirtualPayload(size) if comm.rank == 0 else None,
                              size=size)

    elapsed, mapping, net = _des_time(arm_small, 4, 2, program)
    analytic = CollectiveCosts(mapping=mapping, network=net).bcast(size)
    assert analytic / 2.5 < elapsed < analytic * 2.5


def test_alltoall_within_band(arm_small):
    size = 8192

    def program(comm):
        yield from comm.alltoall([VirtualPayload(size)] * comm.size, size=size)

    elapsed, mapping, net = _des_time(arm_small, 4, 2, program)
    analytic = CollectiveCosts(mapping=mapping, network=net).alltoall(size)
    assert analytic / 3.0 < elapsed < analytic * 3.0


def test_barrier_within_band(arm_small):
    def program(comm):
        yield from comm.barrier()

    elapsed, mapping, net = _des_time(arm_small, 4, 2, program)
    analytic = CollectiveCosts(mapping=mapping, network=net).barrier()
    assert analytic / 3.0 < elapsed < analytic * 3.0


def test_allgather_within_band(arm_small):
    size = 4096

    def program(comm):
        yield from comm.allgather(VirtualPayload(size), size=size)

    elapsed, mapping, net = _des_time(arm_small, 4, 2, program)
    analytic = CollectiveCosts(mapping=mapping, network=net).allgather(size)
    assert analytic / 3.0 < elapsed < analytic * 3.0


class TestScalingShapes:
    """Closed forms must have the right asymptotics."""

    def _costs(self, arm, n_nodes, rpn=48):
        mapping = RankMapping(arm, n_nodes=n_nodes, ranks_per_node=rpn)
        return CollectiveCosts(mapping=mapping,
                               network=network_for(arm, n_nodes=n_nodes))

    def test_allreduce_grows_logarithmically(self, arm):
        t24 = self._costs(arm, 24).allreduce(8)
        t192 = self._costs(arm, 192).allreduce(8)
        # log2(9216)/log2(1152) ~ 1.3: must grow, but far less than 8x.
        assert 1.0 < t192 / t24 < 2.0

    def test_alltoall_latency_term_grows_linearly(self, arm):
        t24 = self._costs(arm, 24).alltoall(64)
        t96 = self._costs(arm, 96).alltoall(64)
        assert 2.0 < t96 / t24 < 6.0

    def test_halo_cost_shrinks_with_face_size(self, arm):
        c = self._costs(arm, 16)
        assert c.halo_exchange(1024) < c.halo_exchange(1024 * 1024)

    def test_single_node_uses_shared_memory(self, arm):
        c1 = self._costs(arm, 1)
        c2 = self._costs(arm, 2)
        assert c1.allreduce(4096) < c2.allreduce(4096)

    def test_zero_ranks_edge(self, arm):
        c = self._costs(arm, 1, rpn=1)
        assert c.allreduce(8) == 0.0
        assert c.barrier() == 0.0
        assert c.alltoall(8) == 0.0
