"""Property-based tests (hypothesis) on core data structures and invariants."""


import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des import Channel, Engine
from repro.kernels.lu import blocked_lu, hpl_residual, lu_solve
from repro.kernels.stencil import decompose
from repro.network.linkmodel import TOFUD_LINK
from repro.network.torus import TorusTopology
from repro.util.stats import summarize
from repro.util.units import parse_size


# ---------------------------------------------------------------------------
# units
# ---------------------------------------------------------------------------


@given(st.integers(min_value=0, max_value=10**15))
def test_parse_size_plain_integers_roundtrip(n):
    assert parse_size(str(n)) == n


@given(st.integers(min_value=1, max_value=10**6),
       st.sampled_from(["kb", "mb", "KiB", "MiB", "GB"]))
def test_parse_size_suffix_monotone(n, suffix):
    assert parse_size(f"{n}{suffix}") >= n


# ---------------------------------------------------------------------------
# statistics
# ---------------------------------------------------------------------------


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False), min_size=2, max_size=200))
def test_running_stats_matches_numpy(xs):
    rs = summarize(xs)
    assert rs.mean == pytest.approx(float(np.mean(xs)), rel=1e-9, abs=1e-6)
    assert rs.variance == pytest.approx(float(np.var(xs, ddof=1)),
                                        rel=1e-6, abs=1e-4)


@given(st.lists(st.floats(min_value=-1e5, max_value=1e5, allow_nan=False),
                min_size=1, max_size=80),
       st.lists(st.floats(min_value=-1e5, max_value=1e5, allow_nan=False),
                min_size=1, max_size=80))
def test_running_stats_merge_associative(a, b):
    merged = summarize(a).merge(summarize(b))
    ref = summarize(a + b)
    assert merged.count == ref.count
    assert merged.mean == pytest.approx(ref.mean, rel=1e-9, abs=1e-6)
    assert merged.min == ref.min and merged.max == ref.max


# ---------------------------------------------------------------------------
# torus metric
# ---------------------------------------------------------------------------

_dims = st.lists(st.integers(min_value=1, max_value=5), min_size=1,
                 max_size=4).map(tuple)


@given(_dims, st.data())
def test_torus_hops_is_a_metric(dims, data):
    topo = TorusTopology(dims)
    n = topo.n_nodes
    a = data.draw(st.integers(0, n - 1))
    b = data.draw(st.integers(0, n - 1))
    c = data.draw(st.integers(0, n - 1))
    # identity, symmetry, triangle inequality, diameter bound
    assert topo.hops(a, a) == 0
    assert topo.hops(a, b) == topo.hops(b, a)
    assert topo.hops(a, c) <= topo.hops(a, b) + topo.hops(b, c)
    assert topo.hops(a, b) <= topo.diameter


@given(_dims, st.data())
def test_torus_coords_roundtrip(dims, data):
    topo = TorusTopology(dims)
    node = data.draw(st.integers(0, topo.n_nodes - 1))
    assert topo.node_at(topo.coords(node)) == node


# ---------------------------------------------------------------------------
# link model
# ---------------------------------------------------------------------------


@given(st.integers(min_value=1, max_value=2**26),
       st.integers(min_value=0, max_value=10))
def test_p2p_time_positive_and_bounded(size, hops):
    t = TOFUD_LINK.p2p_time(size, hops)
    assert t > 0
    # cannot beat the raw wire speed
    assert size / t <= TOFUD_LINK.bandwidth * 1.0001 if hops else True


@given(st.integers(min_value=1, max_value=2**24),
       st.integers(min_value=1, max_value=8))
def test_bigger_messages_never_faster(size, hops):
    assert TOFUD_LINK.p2p_time(size, hops) <= TOFUD_LINK.p2p_time(2 * size, hops)


# ---------------------------------------------------------------------------
# decomposition
# ---------------------------------------------------------------------------


@given(st.integers(min_value=1, max_value=5000), st.integers(min_value=1,
                                                             max_value=64))
def test_decompose_partition_properties(extent, parts):
    if parts > extent:
        with pytest.raises(Exception):
            decompose(extent, parts)
        return
    slabs = decompose(extent, parts)
    assert slabs[0][0] == 0 and slabs[-1][1] == extent
    # contiguity + balance
    for (a0, a1), (b0, b1) in zip(slabs, slabs[1:]):
        assert a1 == b0
    sizes = [b - a for a, b in slabs]
    assert max(sizes) - min(sizes) <= 1


# ---------------------------------------------------------------------------
# DES channel FIFO
# ---------------------------------------------------------------------------


@given(st.lists(st.integers(), min_size=1, max_size=30))
def test_channel_fifo_order(messages):
    eng = Engine()
    ch = Channel(eng)
    for m in messages:
        ch.put(0, 0, m)
    got = []

    def receiver():
        for _ in messages:
            got.append((yield ch.get(0, 0)))

    eng.process(receiver())
    eng.run()
    assert got == messages


# ---------------------------------------------------------------------------
# LU on random matrices
# ---------------------------------------------------------------------------


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=2, max_value=40),
       st.integers(min_value=1, max_value=16),
       st.integers(min_value=0, max_value=1000))
def test_blocked_lu_random_matrices(n, block, seed):
    rng = np.random.default_rng(seed)
    # diagonally dominated to stay comfortably non-singular
    a = rng.normal(size=(n, n)) + n * np.eye(n)
    b = rng.normal(size=n)
    lu, piv = blocked_lu(a.copy(), block=block)
    x = lu_solve(lu, piv, b)
    assert hpl_residual(a, x, b) < 16.0


# ---------------------------------------------------------------------------
# simulated-MPI allreduce on arbitrary payloads
# ---------------------------------------------------------------------------


# ---------------------------------------------------------------------------
# contention solver
# ---------------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=47),
       st.sampled_from(["first-touch", "prepage-interleave", "prepage-master"]))
def test_stream_bandwidth_monotone_and_bounded(threads, policy_name):
    from repro.machine import cte_arm
    from repro.smp import PagePolicy, bind_threads, stream_bandwidth

    node = cte_arm().node
    policy = PagePolicy(policy_name)
    bw_t = stream_bandwidth(bind_threads(node, threads), policy)
    bw_t1 = stream_bandwidth(bind_threads(node, threads + 1), policy)
    # adding a thread on the rising edge never hurts by more than the
    # arbitration term; the roof is the node's sustainable bandwidth.
    assert bw_t1 >= bw_t * 0.99
    assert bw_t <= node.sustainable_memory_bandwidth * 1.0001
    assert bw_t > 0


# ---------------------------------------------------------------------------
# blocked GEMM on random shapes
# ---------------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1, max_value=40),
       st.integers(min_value=1, max_value=40),
       st.integers(min_value=1, max_value=40),
       st.integers(min_value=1, max_value=48),
       st.integers(min_value=0, max_value=100))
def test_blocked_gemm_any_shape(m, k, n, block, seed):
    from repro.kernels.gemm import blocked_gemm

    rng = np.random.default_rng(seed)
    a = rng.normal(size=(m, k))
    b = rng.normal(size=(k, n))
    assert np.allclose(blocked_gemm(a, b, block=block), a @ b)


# ---------------------------------------------------------------------------
# collective cost monotonicity
# ---------------------------------------------------------------------------


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=1, max_value=20),
       st.integers(min_value=1, max_value=16))
def test_collective_costs_monotone_in_size(size_kib, doubled):
    """Monotone up to the TofuD protocol bimodality: a small message on the
    slow protocol path may legitimately beat a larger one on the fast path
    (factor 0.6), so the property carries that slack — hypothesis found the
    inversion on its own."""
    from repro.machine import cte_arm
    from repro.network.collectives import CollectiveCosts
    from repro.network.linkmodel import ProtocolModel
    from repro.network.model import network_for
    from repro.simmpi.mapping import RankMapping

    cluster = cte_arm()
    mapping = RankMapping(cluster, n_nodes=4, ranks_per_node=4)
    costs = CollectiveCosts(mapping=mapping,
                            network=network_for(cluster, n_nodes=4))
    slack = 1.0 / ProtocolModel().slow_factor + 1e-6
    small = size_kib * 1024
    large = small * (1 + doubled)
    for fn in (costs.allreduce, costs.bcast, costs.allgather, costs.alltoall):
        assert fn(small) <= fn(large) * slack
        assert fn(small) > 0


@settings(max_examples=12, deadline=None)
@given(st.integers(min_value=2, max_value=8),
       st.integers(min_value=0, max_value=7),
       st.integers(min_value=0, max_value=2**20))
def test_bcast_any_root_any_size(n_ranks, root_pick, size):
    from repro.machine import cte_arm
    from repro.simmpi import RankMapping, World

    root = root_pick % n_ranks
    world = World(RankMapping(cte_arm(12), n_nodes=min(n_ranks, 3),
                              ranks_per_node=-(-n_ranks // min(n_ranks, 3))))

    def program(comm):
        payload = ("data", size) if comm.rank == root else None
        got = yield from comm.bcast(payload, root=root, size=max(1, size))
        return got

    res = world.run(program)
    assert all(v == ("data", size) for v in res.rank_results)


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=2, max_value=7))
def test_alltoall_is_a_transpose(n_ranks):
    from repro.machine import cte_arm
    from repro.simmpi import RankMapping, World

    world = World(RankMapping(cte_arm(12), n_nodes=min(n_ranks, 3),
                              ranks_per_node=-(-n_ranks // min(n_ranks, 3))))
    p = world.mapping.n_ranks

    def program(comm):
        out = yield from comm.alltoall(
            [(comm.rank, d) for d in range(comm.size)])
        return out

    res = world.run(program)
    for dst, received in enumerate(res.rank_results):
        assert received == [(src, dst) for src in range(p)]


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=2, max_value=8),
       st.integers(min_value=0, max_value=7))
def test_gather_scatter_inverse(n_ranks, root_pick):
    """scatter(gather(x)) is the identity, for any root."""
    from repro.machine import cte_arm
    from repro.simmpi import RankMapping, World

    root = root_pick % n_ranks
    world = World(RankMapping(cte_arm(12), n_nodes=min(n_ranks, 3),
                              ranks_per_node=-(-n_ranks // min(n_ranks, 3))))

    def program(comm):
        gathered = yield from comm.gather(comm.rank * 11, root=root)
        mine = yield from comm.scatter(gathered, root=root)
        return mine

    res = world.run(program)
    assert res.rank_results == [r * 11 for r in range(world.mapping.n_ranks)]


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=2, max_value=9),
       st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
                min_size=1, max_size=8))
def test_allreduce_sums_any_vector(n_ranks, values):
    from repro.machine import cte_arm
    from repro.simmpi import RankMapping, World

    cluster = cte_arm(12)
    world = World(RankMapping(cluster, n_nodes=min(n_ranks, 3),
                              ranks_per_node=-(-n_ranks // min(n_ranks, 3))))
    p = world.mapping.n_ranks
    vec = np.asarray(values)

    def program(comm):
        total = yield from comm.allreduce(vec * (comm.rank + 1))
        return total

    res = world.run(program)
    expected = vec * sum(range(1, p + 1))
    for out in res.rank_results:
        assert np.allclose(out, expected)
