"""SVG chart rendering and the figure-export command."""

import xml.dom.minidom

import numpy as np
import pytest

from repro.util.errors import ConfigurationError
from repro.util.svgplot import bar_chart, heatmap, line_plot


def _valid_svg(svg: str) -> xml.dom.minidom.Document:
    doc = xml.dom.minidom.parseString(svg)
    assert doc.documentElement.tagName == "svg"
    return doc


class TestLinePlot:
    def test_renders_valid_xml(self):
        svg = line_plot({"a": [(1, 2), (2, 4)], "b": [(1, 1), (2, 1)]},
                        title="t", xlabel="x", ylabel="y")
        doc = _valid_svg(svg)
        assert "polyline" in svg and "circle" in svg

    def test_log_axes(self):
        svg = line_plot({"s": [(1, 10), (100, 1000)]}, logx=True, logy=True)
        _valid_svg(svg)

    def test_legend_contains_series_names(self):
        svg = line_plot({"CTE-Arm": [(1, 2)], "MN4": [(1, 3)]})
        assert "CTE-Arm" in svg and "MN4" in svg

    def test_escapes_markup(self):
        svg = line_plot({"a<b&c": [(1, 1), (2, 2)]}, title="x<y")
        _valid_svg(svg)
        assert "a<b" not in svg  # escaped

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            line_plot({})
        with pytest.raises(ConfigurationError):
            line_plot({"a": []})

    def test_log_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            line_plot({"a": [(0, 1), (1, 2)]}, logx=True)


class TestBarChart:
    def test_renders_with_labels(self):
        svg = bar_chart(["g1", "g2"], {"s1": [1.0, 2.0], "s2": [2.0, 1.0]},
                        labels={"s1": ["50%", "99%"]})
        _valid_svg(svg)
        assert "99%" in svg

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            bar_chart(["g1"], {"s": [1.0, 2.0]})


class TestHeatmap:
    def test_renders_matrix(self):
        svg = heatmap(np.arange(16.0).reshape(4, 4), title="h")
        _valid_svg(svg)
        assert svg.count("<rect") >= 16

    def test_nan_cells_grey(self):
        m = np.ones((3, 3))
        m[1, 1] = np.nan
        assert "#dddddd" in heatmap(m)

    def test_rejects_1d(self):
        with pytest.raises(ConfigurationError):
            heatmap(np.ones(4))


class TestFigureExport:
    def test_renders_all_figures(self, tmp_path):
        from repro.harness.figures_svg import render_all

        paths = render_all(str(tmp_path))
        assert len(paths) == 17
        names = {p.split("/")[-1] for p in paths}
        assert "fig01_fpu.svg" in names
        assert "fig16_wrf.svg" in names
        assert "table4_speedups.svg" in names
        for p in paths:
            with open(p) as fh:
                _valid_svg(fh.read())

    def test_cli_figures_command(self, tmp_path, capsys):
        from repro.harness.cli import main

        assert main(["figures", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "fig04_netmap.svg" in out
