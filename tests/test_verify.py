"""The verify subsystem: one test per rule family, plus clean-run checks."""

import json

import numpy as np
import pytest

from repro.apps.miniapps import stencil_miniapp
from repro.harness.cli import main as cli_main
from repro.simmpi import RankMapping, ReduceOp, VirtualPayload, World
from repro.smp.binding import ThreadPlacement
from repro.smp.pages import PagePolicy
from repro.toolchain.compiler import CompilerProfile
from repro.toolchain.kernels import KernelClass
from repro.toolchain.profiles import FUJITSU_1_2_26B, GNU_8_3_1_SVE
from repro.util.errors import DeadlockError
from repro.verify import (
    CommRecorder,
    Severity,
    advise_build,
    advise_kernel,
    check_collectives,
    check_mapping,
    check_oversubscription,
    check_placements,
    verify_app,
)


@pytest.fixture()
def two_rank_world(arm_small):
    return World(RankMapping(arm_small, n_nodes=2, ranks_per_node=1))


def rules_of(diags):
    return [d.rule_id for d in diags]


# ---------------------------------------------------------------------------
# MPI checker: message matching
# ---------------------------------------------------------------------------


class TestUnmatchedMessages:
    def test_unmatched_send_reported(self, two_rank_world):
        def program(comm):
            if comm.rank == 0:
                yield from comm.send(1, b"orphan", tag=3)
            else:
                yield from comm.compute(1e-6)

        res = two_rank_world.run(program, verify=True)
        assert rules_of(res.diagnostics) == ["MPI001"]
        diag = res.diagnostics.diagnostics[0]
        assert diag.details["source"] == 0 and diag.details["dest"] == 1
        assert diag.details["tag"] == 3

    def test_unmatched_recv_reported(self, two_rank_world):
        def program(comm):
            if comm.rank == 1:
                comm.irecv(0, tag=4)  # posted, never satisfied, never waited
            yield from comm.compute(1e-6)

        res = two_rank_world.run(program, verify=True)
        assert rules_of(res.diagnostics) == ["MPI002"]

    def test_tag_mismatch_reported_as_one_finding(self, two_rank_world):
        def program(comm):
            if comm.rank == 0:
                yield from comm.send(1, b"x", tag=1)
            else:
                comm.irecv(0, tag=2)  # wrong tag; never completes
                yield from comm.compute(1e-6)

        res = two_rank_world.run(program, verify=True)
        assert rules_of(res.diagnostics) == ["MPI003"]
        diag = res.diagnostics.diagnostics[0]
        assert diag.details["send_tag"] == 1
        assert diag.details["recv_tag"] == 2

    def test_matched_traffic_is_clean(self, small_world):
        def program(comm):
            partner = comm.rank ^ 1
            got = yield from comm.sendrecv(partner, comm.rank, tag=7)
            total = yield from comm.allreduce(float(got), op=ReduceOp.SUM)
            return total

        res = small_world.run(program, verify=True)
        assert len(res.diagnostics) == 0
        assert res.diagnostics.clean


# ---------------------------------------------------------------------------
# MPI checker: collective agreement
# ---------------------------------------------------------------------------


class TestCollectiveAgreement:
    def test_root_disagreement(self, two_rank_world):
        def program(comm):
            # Each rank believes itself the root: both send, nobody hangs,
            # but the collective is wrong.
            yield from comm.bcast(b"data", root=comm.rank)

        res = two_rank_world.run(program, verify=True)
        assert "MPI005" in rules_of(res.diagnostics)

    def test_size_divergence(self, two_rank_world):
        def program(comm):
            nbytes = 8 if comm.rank == 0 else 16
            yield from comm.allreduce(VirtualPayload(nbytes), size=nbytes)

        res = two_rank_world.run(program, verify=True)
        assert "MPI006" in rules_of(res.diagnostics)

    def test_op_divergence_at_index(self):
        rec = CommRecorder()
        rec.record_collective(0, "allreduce", 0, "main")
        rec.record_collective(1, "allreduce", 0, "main")
        rec.record_collective(0, "barrier", 0, "main")
        rec.record_collective(1, "bcast", 0, "main", root=0)
        diags = check_collectives(rec)
        assert rules_of(diags) == ["MPI004"]
        assert diags[0].details["index"] == 1
        assert diags[0].details["ops"] == {0: "barrier", 1: "bcast"}

    def test_count_divergence(self):
        rec = CommRecorder()
        rec.record_collective(0, "barrier", 0, "main")
        rec.record_collective(1, "barrier", 0, "main")
        rec.record_collective(0, "barrier", 0, "main")
        diags = check_collectives(rec)
        assert rules_of(diags) == ["MPI004"]
        assert diags[0].details["counts"] == {0: 2, 1: 1}

    def test_agreeing_collectives_clean(self, small_world):
        def program(comm):
            yield from comm.barrier()
            data = yield from comm.bcast(np.arange(4.0), root=0)
            yield from comm.allreduce(data.sum())
            sub = yield from comm.split(comm.rank % 2)
            yield from sub.barrier()

        res = small_world.run(program, verify=True)
        assert len(res.diagnostics) == 0


# ---------------------------------------------------------------------------
# MPI checker: deadlock postmortem
# ---------------------------------------------------------------------------


class TestDeadlockPostmortem:
    def test_cycle_reported_with_ranks_and_ops(self, two_rank_world):
        def program(comm):
            got = yield from comm.recv(1 - comm.rank, tag=5)
            yield from comm.send(1 - comm.rank, b"x", tag=5)
            return got

        with pytest.raises(DeadlockError) as exc_info:
            two_rank_world.run(program, verify=True)
        report = exc_info.value.diagnostics
        assert report is not None
        assert rules_of(report) == ["MPI007"]
        cycle = report.diagnostics[0]
        assert sorted(cycle.details["cycle_ranks"]) == [0, 1]
        assert cycle.details["tags"] == [5, 5]
        # The rendered message names both blocked ranks and the operation.
        assert "rank 0 waits" in str(exc_info.value)
        assert "rank 1 waits" in str(exc_info.value)

    def test_blocked_without_cycle_names_missing_sender(self, two_rank_world):
        def program(comm):
            if comm.rank == 0:
                yield from comm.recv(1, tag=9)

        with pytest.raises(DeadlockError) as exc_info:
            two_rank_world.run(program, verify=True)
        report = exc_info.value.diagnostics
        assert rules_of(report) == ["MPI008"]
        assert "ran to completion" in report.diagnostics[0].message

    def test_without_verify_error_stays_bare(self, two_rank_world):
        def program(comm):
            if comm.rank == 0:
                yield from comm.recv(1, tag=9)

        with pytest.raises(DeadlockError) as exc_info:
            two_rank_world.run(program)
        assert exc_info.value.diagnostics is None

    def test_three_rank_cycle(self, arm_small):
        world = World(RankMapping(arm_small, n_nodes=3, ranks_per_node=1))

        def program(comm):
            # 0 <- 1 <- 2 <- 0 ring of blocking receives.
            yield from comm.recv((comm.rank + 1) % 3, tag=1)
            yield from comm.send((comm.rank - 1) % 3, b"x", tag=1)

        with pytest.raises(DeadlockError) as exc_info:
            world.run(program, verify=True)
        cycle = exc_info.value.diagnostics.diagnostics[0]
        assert cycle.rule_id == "MPI007"
        assert sorted(cycle.details["cycle_ranks"]) == [0, 1, 2]

    def test_collective_deadlock_labeled(self, two_rank_world):
        def program(comm):
            if comm.rank == 0:
                yield from comm.barrier()
            else:
                yield from comm.compute(1e-6)

        with pytest.raises(DeadlockError) as exc_info:
            two_rank_world.run(program, verify=True)
        report = exc_info.value.diagnostics
        assert report is not None
        assert any("barrier" in d.message for d in report)


# ---------------------------------------------------------------------------
# SMP / placement lint
# ---------------------------------------------------------------------------


class TestPlacementLint:
    def test_oversubscription_raw_counts(self, arm_small):
        node = arm_small.node
        diags = check_oversubscription(node, ranks_per_node=8,
                                       threads_per_rank=8)
        assert rules_of(diags) == ["SMP001"]
        assert diags[0].severity is Severity.ERROR

    def test_oversubscription_overlapping_placements(self, arm_small):
        node = arm_small.node
        placements = [
            ThreadPlacement(node, (0, 1, 2)),
            ThreadPlacement(node, (2, 3, 4)),  # core 2 pinned twice
        ]
        diags = check_placements(node, placements)
        assert rules_of(diags) == ["SMP001"]
        assert diags[0].details["core"] == 2

    def test_domain_spill_warning(self, arm_small):
        # 6 ranks x 8 threads on a 48-core node: blocks of 8 cross the
        # 12-core CMG boundaries although 8 threads fit inside one CMG.
        m = RankMapping(arm_small, n_nodes=1, ranks_per_node=6,
                        threads_per_rank=8)
        diags = check_mapping(m)
        assert rules_of(diags) == ["SMP002", "SMP002"]  # ranks 1 and 4 spill
        spill = [d for d in diags if d.rule_id == "SMP002"]
        assert all(d.severity is Severity.WARNING for d in spill)

    def test_prepage_on_openmp_run_fig2_trap(self, arm_small):
        m = RankMapping(arm_small, n_nodes=1, ranks_per_node=1,
                        threads_per_rank=48)
        diags = check_mapping(m, policy=PagePolicy.PREPAGE_INTERLEAVE)
        trap = [d for d in diags if d.rule_id == "SMP003"]
        assert len(trap) == 1
        assert "XOS_MMM_L_PAGING_POLICY=demand" in trap[0].hint

    def test_first_touch_hybrid_is_quiet(self, arm_small):
        # The paper's per-CMG hybrid pinning: nothing to complain about.
        m = RankMapping(arm_small, n_nodes=1, ranks_per_node=4,
                        threads_per_rank=12)
        diags = check_mapping(m, policy=PagePolicy.FIRST_TOUCH)
        assert diags == []

    def test_uneven_rank_count(self, arm_small):
        m = RankMapping(arm_small, n_nodes=1, ranks_per_node=5,
                        threads_per_rank=1)
        diags = check_mapping(m)
        assert "SMP004" in rules_of(diags)
        assert "SMP005" in rules_of(diags)  # 5 cores of 48 used


# ---------------------------------------------------------------------------
# Vectorization advisor
# ---------------------------------------------------------------------------


class TestVectorizationAdvisor:
    def test_scalar_fallback_irregular(self):
        diags = advise_kernel(GNU_8_3_1_SVE, KernelClass.FEM_ASSEMBLY)
        assert rules_of(diags) == ["VEC001"]
        assert "gather/scatter" in diags[0].message

    def test_gnu_sve_gap(self):
        diags = advise_kernel(GNU_8_3_1_SVE, KernelClass.SCALAR_PHYSICS)
        assert rules_of(diags) == ["VEC002"]

    def test_partial_vectorization(self):
        diags = advise_kernel(GNU_8_3_1_SVE, KernelClass.STENCIL)
        assert rules_of(diags) == ["VEC005"]

    def test_uncovered_class_scalar(self):
        bare = CompilerProfile(name="Toy", version="0", family="gnu",
                               target_isa="SVE")
        diags = advise_kernel(bare, KernelClass.STREAM)
        assert rules_of(diags) == ["VEC003"]

    def test_good_vectorization_silent_unless_asked(self):
        assert advise_kernel(GNU_8_3_1_SVE, KernelClass.STREAM) == []
        ok = advise_kernel(GNU_8_3_1_SVE, KernelClass.STREAM, include_ok=True)
        assert rules_of(ok) == ["VEC007"]

    def test_io_has_nothing_to_vectorize(self):
        assert advise_kernel(GNU_8_3_1_SVE, KernelClass.IO) == []

    def test_deployment_failure_reported(self):
        diags = advise_build(FUJITSU_1_2_26B, (KernelClass.FEM_ASSEMBLY,),
                             application="alya")
        assert rules_of(diags) == ["VEC006"]  # compile hang: nothing built
        assert "hangs" in diags[0].message

    def test_runtime_failure_still_advises_kernels(self):
        diags = advise_build(FUJITSU_1_2_26B, (KernelClass.FEM_ASSEMBLY,),
                             application="openifs")
        assert rules_of(diags) == ["VEC006", "VEC005"]
        assert "aborts" in diags[0].message

    def test_alternatives_name_better_compilers(self):
        diags = advise_kernel(GNU_8_3_1_SVE, KernelClass.FEM_ASSEMBLY)
        assert "Fujitsu/1.2.26b" in diags[0].details["alternatives"]


# ---------------------------------------------------------------------------
# End-to-end: runner, CLI, clean programs
# ---------------------------------------------------------------------------


class TestVerifyRunner:
    def test_clean_miniapp_zero_mpi_diagnostics(self, small_world):
        res = small_world.run(stencil_miniapp, global_shape=(32, 32),
                              steps=3, verify=True)
        assert res.diagnostics is not None
        assert len(res.diagnostics) == 0
        assert res.diagnostics.clean

    def test_verify_app_wrf(self):
        report = verify_app("wrf", cluster="cte-arm", n_nodes=2)
        # The dynamic MPI check of the bundled app must come back clean...
        assert not report.errors
        # ...while the advisor explains the GNU-SVE scalar fallback.
        assert any(d.rule_id.startswith("VEC") for d in report)

    def test_verify_app_alya_reports_fujitsu_hang(self):
        report = verify_app("alya", cluster="cte-arm", dynamic=False)
        vec6 = report.by_rule("VEC006")
        assert vec6 and "alya" in vec6[0].message.lower()

    def test_json_roundtrip(self):
        report = verify_app("wrf", cluster="cte-arm", n_nodes=2,
                            dynamic=False)
        payload = json.loads(report.to_json())
        assert payload["title"].startswith("wrf")
        assert isinstance(payload["diagnostics"], list)
        for diag in payload["diagnostics"]:
            assert {"rule", "severity", "message", "hint"} <= set(diag)

    def test_cli_verify_text(self, capsys):
        code = cli_main(["verify", "wrf", "--nodes", "2", "--static-only"])
        out = capsys.readouterr().out
        assert code == 0
        assert "== verify: wrf" in out

    def test_cli_verify_json(self, capsys):
        code = cli_main(["verify", "wrf", "--nodes", "2", "--static-only",
                         "--json"])
        out = capsys.readouterr().out
        assert code == 0
        payload = json.loads(out)
        assert payload["counts"]["error"] == 0

    def test_cli_verify_prepage_warns(self, capsys):
        cli_main(["verify", "wrf", "--nodes", "2", "--static-only",
                  "--page-policy", "prepage-interleave"])
        out = capsys.readouterr().out
        # WRF is MPI-only (48x1): single-domain ranks, so no SMP003; the
        # policy plumbing is exercised without false positives.
        assert "SMP003" not in out


class TestPhaseTimeMatching:
    def test_phase_prefix_no_longer_conflates(self, two_rank_world):
        def program(comm):
            comm.set_phase("solver")
            yield from comm.compute(0.25)
            comm.set_phase("solver_setup")
            yield from comm.compute(1.0)

        res = two_rank_world.run(program)
        # Before the fix, "solver" matched "solver_setup:compute" too and
        # reported 1.25.
        assert res.phase_time("solver") == pytest.approx(0.25)
        assert res.phase_time("solver_setup") == pytest.approx(1.0)

    def test_exact_subphase_still_matches(self, two_rank_world):
        def program(comm):
            comm.set_phase("step")
            yield from comm.compute(0.5, label="kernel")

        res = two_rank_world.run(program)
        assert res.phase_time("step:kernel") == pytest.approx(0.5)
        assert res.phase_time("step") == pytest.approx(0.5)
