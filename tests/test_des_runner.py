"""DES execution of the workload models vs the analytic evaluator.

The 192-node figures rest on the analytic layer; these tests re-run the
same phase descriptions as real simulated-MPI programs and require
agreement — the strongest internal-consistency check in the suite.
"""

import pytest

from repro.apps import GromacsModel, NemoModel, WRFModel
from repro.apps.des_runner import compare_des_vs_analytic, des_time_step
from repro.util.errors import OutOfMemoryError


class TestDESvsAnalytic:
    @pytest.mark.parametrize("app_cls,n_nodes", [
        (WRFModel, 1), (WRFModel, 2), (GromacsModel, 2), (NemoModel, 8),
    ])
    def test_agreement_on_arm(self, arm, app_cls, n_nodes):
        r = compare_des_vs_analytic(app_cls(), arm, n_nodes)
        assert 0.85 < r["ratio"] < 1.20, r

    @pytest.mark.parametrize("app_cls,n_nodes", [
        (WRFModel, 2), (GromacsModel, 2),
    ])
    def test_agreement_on_mn4(self, mn4, app_cls, n_nodes):
        r = compare_des_vs_analytic(app_cls(), mn4, n_nodes)
        assert 0.85 < r["ratio"] < 1.20, r

    def test_slowdown_ratio_preserved_in_des(self, arm, mn4):
        """The paper's WRF gap must appear in the DES path too."""
        app = WRFModel()
        des_arm, _ = des_time_step(app, arm, 2)
        des_mn4, _ = des_time_step(app, mn4, 2)
        assert 1.9 < des_arm / des_mn4 < 2.5

    def test_memory_gate_enforced(self, arm):
        with pytest.raises(OutOfMemoryError):
            des_time_step(NemoModel(), arm, 4)

    def test_multi_step_consistency(self, arm):
        """Per-step time is step-count independent (no warm-up artifacts)."""
        one, _ = des_time_step(WRFModel(io_enabled=False), arm, 2, steps=1)
        three, _ = des_time_step(WRFModel(io_enabled=False), arm, 2, steps=3)
        assert three == pytest.approx(one, rel=0.02)

    def test_trace_contains_all_phases(self, arm):
        _, result = des_time_step(WRFModel(), arm, 2)
        phases = {r.phase.split(":")[0] for r in result.trace}
        assert {"dynamics", "physics", "io"} <= phases

    def test_nic_contention_never_faster(self, arm):
        app = GromacsModel()
        free, _ = des_time_step(app, arm, 2)
        shared, _ = des_time_step(app, arm, 2, nic_contention=True)
        assert shared >= free * 0.999
