"""Distributed LU and FFT-transpose mini-apps: numerics + schedules."""

import numpy as np
import pytest

from repro.apps.miniapps_linalg import fft_transpose_miniapp, lu_miniapp
from repro.simmpi import RankMapping, World
from repro.util.errors import ConfigurationError


class TestLUMiniapp:
    @pytest.mark.parametrize("p,n", [(2, 32), (4, 32), (8, 64)])
    def test_solution_matches_numpy(self, arm_small, p, n):
        world = World(RankMapping(arm_small, n_nodes=min(p, 4),
                                  ranks_per_node=-(-p // min(p, 4))))
        assert world.mapping.n_ranks == p
        res = world.run(lu_miniapp, n=n)
        r0 = res.rank_results[0]
        expected = np.linalg.solve(r0["a"], r0["b"])
        assert np.abs(r0["x"] - expected).max() < 1e-9
        assert r0["residual"] < 1e-9

    def test_indivisible_rejected(self, arm_small):
        world = World(RankMapping(arm_small, n_nodes=3, ranks_per_node=1))
        with pytest.raises(ConfigurationError):
            world.run(lu_miniapp, n=32)

    def test_panel_broadcasts_traced(self, arm_small):
        world = World(RankMapping(arm_small, n_nodes=2, ranks_per_node=2))
        res = world.run(lu_miniapp, n=16)
        # one bcast per elimination column
        bcasts = [r for r in res.trace if r.phase.endswith(":bcast")]
        assert len(bcasts) == 16 * 4  # per rank

    def test_virtual_time_grows_with_n(self, arm_small):
        def run(n):
            world = World(RankMapping(arm_small, n_nodes=2, ranks_per_node=2))
            return world.run(lu_miniapp, n=n).elapsed

        assert run(64) > run(16)


class TestFFTTransposeMiniapp:
    @pytest.mark.parametrize("p,n", [(2, 16), (4, 32), (8, 64)])
    def test_matches_fft2(self, arm_small, p, n):
        world = World(RankMapping(arm_small, n_nodes=min(p, 4),
                                  ranks_per_node=-(-p // min(p, 4))))
        res = world.run(fft_transpose_miniapp, n=n)
        assert res.rank_results[0]["error"] < 1e-10

    def test_alltoall_traced(self, arm_small):
        world = World(RankMapping(arm_small, n_nodes=2, ranks_per_node=2))
        res = world.run(fft_transpose_miniapp, n=16)
        assert any(r.phase.endswith(":alltoall") for r in res.trace)

    def test_indivisible_rejected(self, arm_small):
        world = World(RankMapping(arm_small, n_nodes=3, ranks_per_node=1))
        with pytest.raises(ConfigurationError):
            world.run(fft_transpose_miniapp, n=32)


class TestOSUCrossValidation:
    """The OSU driver's analytic bandwidth equals a DES sendrecv loop."""

    def test_des_loop_matches_network_model(self, arm_small):
        from repro.network.model import network_for

        size = 64 * 1024
        iterations = 4

        def program(comm):
            t0 = comm.now
            for _ in range(iterations):
                yield from comm.sendrecv(1 - comm.rank, None, size=size)
            return comm.now - t0

        world = World(RankMapping(arm_small, n_nodes=2, ranks_per_node=1))
        res = world.run(program)
        measured_bw = size * iterations / max(res.rank_results)
        net = network_for(arm_small, n_nodes=2)
        analytic_bw = net.measured_bandwidth(0, 1, size)
        assert measured_bw == pytest.approx(analytic_bw, rel=0.25)
