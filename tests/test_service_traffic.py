"""Property tests for the synthetic traffic harness.

The generator's contract (ISSUE 8): same seed → byte-identical schedule
and virtual report; offered load is monotone in the arrival-rate scale;
realised scenario mixes track the configured weights.  All properties
run on synthetic workload labels — nothing is priced — so the suite is
fast enough for hypothesis to sweep shapes drawn from
:func:`tests.strategies.traffic_configs`.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings

from repro.service.traffic import (
    Report,
    Scenario,
    TrafficConfig,
    arrival_schedule,
    ramp_stages,
    schedule_digest,
    virtual_report,
)
from repro.util.errors import ConfigurationError

from .strategies import traffic_configs


# -- determinism --------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(config=traffic_configs())
def test_same_seed_same_schedule(config):
    first = arrival_schedule(config)
    second = arrival_schedule(config)
    assert schedule_digest(first) == schedule_digest(second)


@settings(max_examples=15, deadline=None)
@given(config=traffic_configs())
def test_same_seed_byte_identical_virtual_report(config):
    first = json.dumps(virtual_report(config).to_dict(), sort_keys=True)
    second = json.dumps(virtual_report(config).to_dict(), sort_keys=True)
    assert first == second


@settings(max_examples=15, deadline=None)
@given(config=traffic_configs())
def test_different_seed_different_schedule(config):
    """A reseeded generator must actually re-draw the randomness (equal
    schedules would mean the seed is ignored)."""
    schedule = arrival_schedule(config)
    if len(schedule) < 10:
        return  # tiny schedules can collide legitimately
    other = TrafficConfig(stages=config.stages, scenarios=config.scenarios,
                          n_clients=config.n_clients,
                          seed=config.seed ^ 0x5EED)
    assert schedule_digest(schedule) != schedule_digest(
        arrival_schedule(other))


# -- schedule shape -----------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(config=traffic_configs())
def test_schedule_is_ordered_and_in_range(config):
    schedule = arrival_schedule(config)
    names = {s.name for s in config.scenarios}
    previous = 0.0
    for i, arrival in enumerate(schedule):
        assert arrival.index == i
        assert previous <= arrival.t <= config.duration_s
        assert arrival.scenario.name in names
        client_id = int(arrival.client.removeprefix("client-"))
        assert 0 <= client_id < config.n_clients
        previous = arrival.t


@settings(max_examples=30, deadline=None)
@given(config=traffic_configs())
def test_no_arrivals_inside_zero_rate_stages(config):
    """A silent ramp segment offers no load; the hazard inversion must
    skip it rather than divide by zero or park arrivals inside it."""
    schedule = arrival_schedule(config)
    t0 = 0.0
    for duration, rate in config.stages:
        if rate == 0.0:
            inside = [a for a in schedule if t0 < a.t < t0 + duration]
            assert not inside
        t0 += duration


@settings(max_examples=20, deadline=None)
@given(config=traffic_configs())
def test_offered_load_tracks_integrated_hazard(config):
    """The arrival count is Poisson with mean Λ = Σ duration·rate; allow
    a generous 6-sigma band so the property never flakes."""
    expected = sum(d * r for d, r in config.stages)
    count = len(arrival_schedule(config))
    slack = 6.0 * max(expected, 1.0) ** 0.5
    assert expected - slack <= count <= expected + slack


# -- monotonicity -------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(config=traffic_configs())
def test_offered_load_monotone_in_rate_scale(config):
    counts = [len(arrival_schedule(config, rate_scale=s))
              for s in (0.25, 0.5, 1.0, 2.0, 4.0)]
    assert counts == sorted(counts)


@settings(max_examples=20, deadline=None)
@given(config=traffic_configs())
def test_rate_scale_preserves_arrival_identities(config):
    """Scaling the rate moves arrival *times* only: the i-th arrival
    keeps its scenario and client, and scaling up is a pure extension
    (prefix property of the shared hazard stream)."""
    base = arrival_schedule(config)
    scaled = arrival_schedule(config, rate_scale=3.0)
    assert len(scaled) >= len(base)
    for a, b in zip(base, scaled):
        assert a.scenario.name == b.scenario.name
        assert a.client == b.client


def test_rate_scale_must_be_positive():
    with pytest.raises(ConfigurationError):
        arrival_schedule(TrafficConfig(), rate_scale=0.0)


# -- scenario mix -------------------------------------------------------------


def test_mix_fractions_track_weights():
    scenarios = (
        Scenario("a", "synthetic-a", weight=1.0),
        Scenario("b", "synthetic-b", weight=2.0),
        Scenario("c", "synthetic-c", weight=5.0),
    )
    config = TrafficConfig(stages=((10.0, 200.0),), scenarios=scenarios,
                           n_clients=4, seed=7)
    schedule = arrival_schedule(config)
    assert len(schedule) > 1500
    counts = {s.name: 0 for s in scenarios}
    for arrival in schedule:
        counts[arrival.scenario.name] += 1
    total_weight = sum(s.weight for s in scenarios)
    for scenario in scenarios:
        want = scenario.weight / total_weight
        got = counts[scenario.name] / len(schedule)
        assert abs(got - want) < 0.05, (scenario.name, got, want)


@settings(max_examples=15, deadline=None)
@given(config=traffic_configs())
def test_every_client_represented_on_busy_schedules(config):
    schedule = arrival_schedule(config)
    if len(schedule) < 50 * config.n_clients:
        return
    clients = {a.client for a in schedule}
    assert len(clients) == config.n_clients


# -- ramps and validation -----------------------------------------------------


def test_ramp_stages_linear_and_duration_preserving():
    stages = ramp_stages(50.0, 250.0, 5, 10.0)
    assert len(stages) == 5
    assert sum(d for d, _ in stages) == pytest.approx(10.0)
    rates = [r for _, r in stages]
    assert rates == [50.0, 100.0, 150.0, 200.0, 250.0]


def test_ramp_single_stage_uses_start_rate():
    assert ramp_stages(40.0, 400.0, 1, 2.0) == ((2.0, 40.0),)


def test_ramp_rejects_zero_stages():
    with pytest.raises(ConfigurationError):
        ramp_stages(1.0, 2.0, 0, 1.0)


@pytest.mark.parametrize("kwargs", [
    {"stages": ()},
    {"stages": ((0.0, 10.0),)},
    {"stages": ((1.0, -1.0),)},
    {"scenarios": ()},
    {"scenarios": (Scenario("x", "synthetic-x", weight=0.0),)},
    {"n_clients": 0},
])
def test_config_validation(kwargs):
    with pytest.raises(ConfigurationError):
        TrafficConfig(**kwargs)


# -- report invariants --------------------------------------------------------


@settings(max_examples=20, deadline=None)
@given(config=traffic_configs())
def test_virtual_report_accounting(config):
    report = virtual_report(config)
    assert isinstance(report, Report)
    assert report.offered == len(arrival_schedule(config))
    assert report.offered == report.completed + report.rejected + report.errors
    assert report.rejected == 0 and report.errors == 0  # virtual never drops
    assert report.error_rate == 0.0
    assert sum(report.per_scenario.values()) == report.offered
    assert sum(report.per_status.values()) == report.offered
    assert report.duration_s >= config.duration_s
    if report.offered:
        assert report.throughput_rps > 0
        lat = report.latency_ms
        assert 0 <= lat["p50"] <= lat["p90"] <= lat["p99"] <= lat["max"]


@settings(max_examples=10, deadline=None)
@given(config=traffic_configs())
def test_virtual_latency_grows_with_offered_load(config):
    """A slower per-item cost can only hurt the virtual p99 — the
    simulated server is work-conserving FIFO."""
    fast = virtual_report(config, per_item_s=1e-4)
    slow = virtual_report(config, per_item_s=5e-3)
    if fast.offered == 0:
        return
    assert slow.latency_ms["p99"] >= fast.latency_ms["p99"]
