"""Shared-memory model: binding, pages, contention, OpenMP costs.

Includes the paper-facing assertions: the Fig. 2 / Fig. 3 STREAM plateaus
must emerge from the placement + contention model.
"""

import numpy as np
import pytest

from repro.smp import (
    OpenMPModel,
    PagePolicy,
    ThreadBinding,
    bind_threads,
    node_stream_bandwidth,
    page_locality,
    parallel_region_time,
    stream_bandwidth,
)
from repro.smp.pages import remote_fraction
from repro.util.errors import ConfigurationError


class TestBinding:
    def test_spread_round_robins_domains(self, arm):
        p = bind_threads(arm.node, 4, ThreadBinding.SPREAD)
        assert [p.domain_of_thread(t) for t in range(4)] == [0, 1, 2, 3]

    def test_spread_fills_evenly(self, arm):
        p = bind_threads(arm.node, 24, ThreadBinding.SPREAD)
        assert p.domain_counts() == {0: 6, 1: 6, 2: 6, 3: 6}

    def test_close_packs_first_domain(self, arm):
        p = bind_threads(arm.node, 12, ThreadBinding.CLOSE)
        assert p.domain_counts() == {0: 12}

    def test_domain_restriction(self, arm):
        p = bind_threads(arm.node, 8, domain=2)
        assert p.domain_counts() == {2: 8}
        with pytest.raises(ConfigurationError):
            bind_threads(arm.node, 13, domain=2)

    def test_oversubscription_rejected(self, arm):
        with pytest.raises(ConfigurationError):
            bind_threads(arm.node, 49)

    def test_duplicate_core_rejected(self, arm):
        from repro.smp.binding import ThreadPlacement

        with pytest.raises(ConfigurationError):
            ThreadPlacement(arm.node, (0, 0))


class TestPages:
    def test_first_touch_all_local(self, arm):
        p = bind_threads(arm.node, 8)
        L = page_locality(p, PagePolicy.FIRST_TOUCH)
        assert np.allclose(L.sum(axis=1), 1.0)
        assert remote_fraction(p, PagePolicy.FIRST_TOUCH) == 0.0

    def test_prepage_interleave_uniform(self, arm):
        p = bind_threads(arm.node, 8)
        L = page_locality(p, PagePolicy.PREPAGE_INTERLEAVE)
        assert np.allclose(L, 0.25)
        assert remote_fraction(p, PagePolicy.PREPAGE_INTERLEAVE) == pytest.approx(0.75)

    def test_prepage_master_single_domain(self, arm):
        p = bind_threads(arm.node, 8)
        L = page_locality(p, PagePolicy.PREPAGE_MASTER)
        assert np.allclose(L[:, 0], 1.0)
        assert np.allclose(L[:, 1:], 0.0)

    def test_mn4_two_domains(self, mn4):
        p = bind_threads(mn4.node, 4)
        assert remote_fraction(p, PagePolicy.INTERLEAVE) == pytest.approx(0.5)


class TestStreamContention:
    """The paper's STREAM numbers must *emerge* here."""

    def test_fig2_arm_plateau(self, arm):
        p24 = bind_threads(arm.node, 24)
        bw = stream_bandwidth(p24, PagePolicy.PREPAGE_INTERLEAVE)
        assert bw / 1e9 == pytest.approx(292.0, abs=2.0)

    def test_fig2_arm_best_is_24_threads(self, arm):
        best_t = max(
            range(1, 49),
            key=lambda t: (stream_bandwidth(
                bind_threads(arm.node, t), PagePolicy.PREPAGE_INTERLEAVE), t),
        )
        assert best_t == 24

    def test_fig2_mn4_plateau(self, mn4):
        bw = stream_bandwidth(bind_threads(mn4.node, 48), PagePolicy.FIRST_TOUCH)
        assert bw / 1e9 == pytest.approx(201.2, abs=1.0)

    def test_fig3_arm_hybrid(self, arm):
        bw = node_stream_bandwidth(arm.node, ranks=4, threads_per_rank=12)
        assert bw / 1e9 == pytest.approx(862.6, abs=2.0)

    def test_fig3_mn4_hybrid(self, mn4):
        bw = node_stream_bandwidth(mn4.node, ranks=2, threads_per_rank=24)
        assert bw / 1e9 == pytest.approx(201.2, abs=1.0)

    def test_demand_paging_fixes_the_anomaly(self, arm):
        """Extension: first-touch recovers hybrid-level bandwidth."""
        bw = stream_bandwidth(bind_threads(arm.node, 48), PagePolicy.FIRST_TOUCH)
        assert bw / 1e9 > 800

    def test_master_paging_worst(self, arm):
        p = bind_threads(arm.node, 24)
        master = stream_bandwidth(p, PagePolicy.PREPAGE_MASTER)
        inter = stream_bandwidth(p, PagePolicy.PREPAGE_INTERLEAVE)
        assert master < inter

    def test_bandwidth_monotone_below_saturation(self, arm):
        bws = [
            stream_bandwidth(bind_threads(arm.node, t), PagePolicy.FIRST_TOUCH)
            for t in (1, 2, 4, 8)
        ]
        assert bws == sorted(bws)

    def test_node_bandwidth_many_ranks(self, arm):
        # 48 MPI-only ranks with local pages approach the hybrid roof.
        bw = node_stream_bandwidth(arm.node, ranks=48, threads_per_rank=1)
        assert bw / 1e9 == pytest.approx(862.6, rel=0.05)

    def test_rank_shape_validation(self, arm):
        with pytest.raises(ConfigurationError):
            node_stream_bandwidth(arm.node, ranks=0, threads_per_rank=1)
        with pytest.raises(ConfigurationError):
            node_stream_bandwidth(arm.node, ranks=10, threads_per_rank=10)


class TestOpenMPModel:
    def test_compute_bound_region(self, arm):
        p = bind_threads(arm.node, 12, domain=0)
        t = parallel_region_time(p, flops=12e9, bytes_moved=0,
                                 flops_per_core=1e9)
        # 12 threads x 1 GF/core -> 1 s, plus imbalance and fork/join.
        assert 1.0 < t < 1.1

    def test_memory_bound_region(self, arm):
        p = bind_threads(arm.node, 12, domain=0)
        t = parallel_region_time(p, flops=1e6, bytes_moved=215.65e9,
                                 flops_per_core=1e9)
        assert t == pytest.approx(1.0 * 1.05, rel=0.02)

    def test_fork_join_floor(self, arm):
        p = bind_threads(arm.node, 2)
        t = parallel_region_time(p, flops=0, bytes_moved=0, flops_per_core=1e9)
        assert t == pytest.approx(3.0e-6)

    def test_invalid_model(self):
        with pytest.raises(ConfigurationError):
            OpenMPModel(imbalance=0.9)

    def test_negative_work_rejected(self, arm):
        p = bind_threads(arm.node, 2)
        with pytest.raises(ConfigurationError):
            parallel_region_time(p, flops=-1, bytes_moved=0, flops_per_core=1e9)
