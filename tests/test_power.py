"""Power and energy-to-solution models."""

import pytest

from repro.apps import AlyaModel, GromacsModel, WRFModel
from repro.power import (
    PowerModel,
    a64fx_power,
    app_energy,
    linpack_energy,
    power_model_for,
    skylake_power,
)
from repro.util.errors import ConfigurationError


class TestPowerModel:
    def test_idle_vs_loaded(self):
        pm = a64fx_power()
        assert pm.node_power(0) == pm.idle_w
        assert pm.node_power(48) > pm.node_power(24) > pm.node_power(0)

    def test_bandwidth_terms_additive(self):
        pm = skylake_power()
        base = pm.node_power(48)
        assert pm.node_power(48, mem_bw_gbs=100) == pytest.approx(
            base + 100 * pm.mem_w_per_gbs)
        assert pm.node_power(48, nic_bw_gbs=10) == pytest.approx(
            base + 10 * pm.nic_w_per_gbs)

    def test_a64fx_full_load_near_190w(self):
        power = a64fx_power().node_power(48, mem_bw_gbs=862.6 * 0.4)
        assert 160 < power < 210

    def test_skylake_full_load_near_400w(self):
        power = skylake_power().node_power(48, mem_bw_gbs=201.2 * 0.4)
        assert 360 < power < 420

    def test_arm_node_less_than_half_skylake(self):
        a = a64fx_power().node_power(48, mem_bw_gbs=300)
        s = skylake_power().node_power(48, mem_bw_gbs=150)
        assert a < 0.55 * s

    def test_model_for_cluster(self, arm, mn4):
        assert power_model_for(arm) is a64fx_power()
        assert power_model_for(mn4) is skylake_power()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PowerModel("x", idle_w=-1, core_active_w=1, mem_w_per_gbs=0)
        with pytest.raises(ConfigurationError):
            a64fx_power().node_power(-1)


class TestEnergy:
    def test_linpack_efficiency_classes(self, arm, mn4):
        _, gfw_arm = linpack_energy(arm, 192)
        _, gfw_mn4 = linpack_energy(mn4, 192)
        # Fugaku-class vs Skylake-class GFlop/s/W, and the 3x gap between.
        assert 12 < gfw_arm < 20
        assert 4 < gfw_mn4 < 8
        assert gfw_arm > 2.5 * gfw_mn4

    def test_linpack_energy_favours_arm(self, arm, mn4):
        ra, _ = linpack_energy(arm, 192)
        rm, _ = linpack_energy(mn4, 192)
        assert ra.energy_j < rm.energy_j

    def test_app_energy_penalty_below_time_penalty(self, arm, mn4):
        for app in (AlyaModel(), WRFModel(), GromacsModel()):
            ea = app_energy(app, arm, 16)
            em = app_energy(app, mn4, 16)
            time_ratio = ea.seconds / em.seconds
            energy_ratio = ea.energy_j / em.energy_j
            assert time_ratio > 1.0  # Arm slower...
            assert energy_ratio < 0.75 * time_ratio  # ...but energy-closer

    def test_energy_report_units(self, arm):
        report = app_energy(AlyaModel(), arm, 16)
        assert report.total_power_w == pytest.approx(
            report.mean_node_power_w * 16)
        assert report.energy_kwh == pytest.approx(report.energy_j / 3.6e6)
        assert report.seconds > 0
