"""Extended OSU-suite tests: latency, bibw, message rate, allreduce scaling."""

import pytest

from repro.bench.osu import (
    allreduce_scaling,
    bidirectional_bandwidth,
    latency,
    message_rate,
)
from repro.network import network_for
from repro.util.errors import ConfigurationError
from repro.util.units import MIB


@pytest.fixture(scope="module")
def arm_net(arm):
    return network_for(arm, healthy=True)


@pytest.fixture(scope="module")
def mn4_net(mn4):
    return network_for(mn4, n_nodes=192)


class TestLatency:
    def test_small_message_latency_microseconds(self, arm_net):
        t = latency(arm_net, 0, 1)
        assert 0.5e-6 < t < 5e-6

    def test_latency_grows_with_distance(self, arm_net):
        near = latency(arm_net, 0, 1)
        far = max(latency(arm_net, 0, b) for b in range(1, 192))
        assert far > near

    def test_tofu_lower_base_latency_than_omnipath(self, arm_net, mn4_net):
        """The measured 8 B latency is ramp-dominated on both fabrics; the
        technology difference lives in the base-latency parameter (TofuD's
        hardware put is sub-microsecond, OmniPath's PIO path is not)."""
        assert arm_net.link.latency_s < mn4_net.link.latency_s
        # measured values stay within the same small-message band
        assert abs(latency(arm_net, 0, 1) - latency(mn4_net, 0, 1)) < 2e-6


class TestBandwidthVariants:
    def test_bibw_up_to_twice_unidirectional(self, arm_net):
        uni = (1 * MIB) / arm_net.p2p_time(0, 1, 1 * MIB)
        bi = bidirectional_bandwidth(arm_net, 0, 1, size=1 * MIB)
        assert uni < bi <= 2.0 * uni + 1.0

    def test_message_rate_order_of_magnitude(self, arm_net):
        rate = message_rate(arm_net, 0, 1)
        assert 1e5 < rate < 5e7  # hundreds of thousands to tens of millions/s

    def test_message_rate_window_amortizes_latency(self, arm_net):
        assert message_rate(arm_net, 0, 1, window=128) > message_rate(
            arm_net, 0, 1, window=1)

    def test_window_validation(self, arm_net):
        with pytest.raises(ConfigurationError):
            message_rate(arm_net, 0, 1, window=0)


class TestAllreduceScaling:
    def test_logarithmic_growth(self, arm):
        times = allreduce_scaling(arm, [12, 48, 192])
        assert times[12] < times[48] < times[192]
        # log growth: 16x the ranks costs far less than 16x the time.
        assert times[192] < 3.0 * times[12]

    def test_both_machines_same_order(self, arm, mn4):
        t_arm = allreduce_scaling(arm, [48])[48]
        t_mn4 = allreduce_scaling(mn4, [48])[48]
        assert 0.2 < t_arm / t_mn4 < 5.0
