"""Memoization layers of the network and kernel-time models.

The caches must be invisible: identical numbers to the uncached code, and
model mutation (fault injection, rebinding the link/topology) must take
effect immediately.
"""

from __future__ import annotations

from repro.machine import cte_arm, marenostrum4
from repro.machine.core import _sustained_rate
from repro.machine.isa import DType
from repro.network.linkmodel import OMNIPATH_LINK
from repro.network.model import network_for


class TestNetworkModelCache:
    def test_repeat_queries_hit_cache(self):
        net = network_for(cte_arm(24), healthy=True)
        first = net.p2p_time(0, 5, 4096)
        assert net.p2p_time(0, 5, 4096) == first
        assert (0, 5, 4096) in net._base_cache
        assert (0, 5) in net._hops_cache

    def test_fault_mutation_applies_live(self):
        """degrade_receiver after cached queries must change the answer."""
        net = network_for(cte_arm(24), healthy=True)
        healthy = net.p2p_time(0, 5, 4096)
        net.faults.degrade_receiver(5, 0.5)
        assert net.p2p_time(0, 5, 4096) == healthy / 0.5
        # Other pairs are unaffected.
        assert net.p2p_time(0, 6, 4096) == net.p2p_time(0, 6, 4096)

    def test_rebinding_link_invalidates(self):
        net = network_for(cte_arm(24), healthy=True)
        tofud = net.p2p_time(0, 5, 4096)
        net.link = OMNIPATH_LINK
        assert not net._base_cache or net.p2p_time(0, 5, 4096) != tofud
        assert net.p2p_time(0, 5, 4096) != tofud

    def test_explicit_invalidate(self):
        net = network_for(cte_arm(24), healthy=True)
        net.p2p_time(0, 5, 4096)
        net.invalidate_caches()
        assert not net._base_cache
        assert not net._hops_cache

    def test_matches_uncached_computation(self):
        """The cached result equals recomputing from the parts."""
        net = network_for(cte_arm(24))
        for src, dst, size in [(0, 1, 256), (3, 11, 65536), (2, 9, 1 << 20)]:
            expected = net.link.p2p_time(
                size, net.topology.hops(src, dst), src, dst
            ) / net.faults.pair_factor(src, dst)
            assert net.p2p_time(src, dst, size) == expected
            assert net.p2p_time(src, dst, size) == expected  # cached


class TestKernelRateCache:
    def test_sustained_flops_memoized(self):
        core = cte_arm(2).node.core_model
        _sustained_rate.cache_clear()
        first = core.sustained_flops(
            DType.DOUBLE, vector_fraction=0.8, vector_efficiency=0.5
        )
        again = core.sustained_flops(
            DType.DOUBLE, vector_fraction=0.8, vector_efficiency=0.5
        )
        assert again == first
        info = _sustained_rate.cache_info()
        assert info.hits >= 1

    def test_distinct_cores_distinct_entries(self):
        arm = cte_arm(2).node.core_model
        skx = marenostrum4(2).node.core_model
        a = arm.sustained_flops(DType.DOUBLE, vector_fraction=0.9,
                                vector_efficiency=0.6)
        b = skx.sustained_flops(DType.DOUBLE, vector_fraction=0.9,
                                vector_efficiency=0.6)
        assert a != b

    def test_matches_direct_formula(self):
        from repro.machine.isa import ExecMode

        core = cte_arm(2).node.core_model
        vf, ve = 0.7, 0.45
        rv = core.peak_flops(DType.DOUBLE, ExecMode.VECTOR) * ve
        rs = core.peak_flops(DType.DOUBLE, ExecMode.SCALAR) * (
            core.scalar_ooo_efficiency
        )
        expected = 1.0 / (vf / rv + (1.0 - vf) / rs)
        got = core.sustained_flops(
            DType.DOUBLE, vector_fraction=vf, vector_efficiency=ve
        )
        assert got == expected
