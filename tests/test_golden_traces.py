"""Golden-trace regression harness.

Three representative campaigns run and their per-(phase, actor) trace
totals — :meth:`repro.des.trace.TraceRecorder.totals` — are compared
**byte-for-byte** against JSON snapshots under ``tests/golden/``.  The
simulations are fully deterministic, so any diff is a real behavioural
change in the DES, the network model, or the collective algorithms — the
kind of silent drift a tolerance-based comparison would wave through.

After an *intentional* change, regenerate with::

    PYTHONPATH=src python -m pytest tests/test_golden_traces.py --update-golden

and review the snapshot diff like any other code change.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.machine import cte_arm
from repro.resilience import FaultSchedule, ResiliencePolicy, SlowdownOnset
from repro.simmpi import RankMapping, World

GOLDEN_DIR = Path(__file__).parent / "golden"

_CLUSTER = cte_arm(16)


def _serialize(totals: dict[tuple[str, str], float]) -> str:
    """Canonical byte-stable form: nested {phase: {actor: seconds}} with
    sorted keys and full float repr (shortest round-trip)."""
    nested: dict[str, dict[str, float]] = {}
    for (phase, actor), duration in totals.items():
        nested.setdefault(phase, {})[actor] = duration
    return json.dumps(nested, sort_keys=True, indent=2) + "\n"


def _halo_solver_program(comm, steps: int):
    comm.set_phase("halo")
    p = comm.size
    for step in range(steps):
        yield from comm.compute(5e-4, label="stencil")
        if p > 1:
            yield from comm.sendrecv(
                (comm.rank + 1) % p, comm.rank,
                source=(comm.rank - 1) % p, tag=step, size=65536,
            )
    comm.set_phase("solver")
    total = 0.0
    for _ in range(3):
        total = yield from comm.allreduce(total + comm.rank, size=8192)
    return total


def _campaign_halo_des() -> dict:
    """Fully simulated halo + solver over 4 nodes."""
    mapping = RankMapping(_CLUSTER, n_nodes=4, ranks_per_node=2)
    world = World(mapping)
    world.run(_halo_solver_program, 6)
    return world.trace.totals()


def _campaign_fastcoll_bulk() -> dict:
    """Analytic collectives: the fast path's trace must stay stable too."""
    mapping = RankMapping(_CLUSTER, n_nodes=4, ranks_per_node=4)

    def program(comm):
        comm.set_phase("bulk")
        acc = float(comm.rank)
        for _ in range(4):
            acc = yield from comm.allreduce(acc, size=262144)
            yield from comm.barrier()
        blocks = yield from comm.allgather(acc, size=4096)
        return blocks

    world = World(mapping, fast_collectives=True)
    world.run(program)
    return world.trace.totals()


def _campaign_static_faults() -> dict:
    """Halo under a statically weak receiver plus a mid-run straggler
    (degradation-only: deterministic, all ranks complete)."""
    mapping = RankMapping(_CLUSTER, n_nodes=4, ranks_per_node=2)
    world = World(
        mapping,
        fault_schedule=FaultSchedule(
            [SlowdownOnset(1e-3, node=2, factor=0.5)]
        ),
        resilience=ResiliencePolicy(recv_timeout=None, send_timeout=None),
    )
    world.network.faults.degrade_receiver(1, 0.25)
    world.run(_halo_solver_program, 6)
    return world.trace.totals()


_CAMPAIGNS = {
    "halo_des": _campaign_halo_des,
    "fastcoll_bulk": _campaign_fastcoll_bulk,
    "static_faults": _campaign_static_faults,
}


@pytest.mark.parametrize("name", sorted(_CAMPAIGNS))
def test_golden_trace(name, request):
    got = _serialize(_CAMPAIGNS[name]())
    path = GOLDEN_DIR / f"{name}.json"
    if request.config.getoption("--update-golden"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(got)
        pytest.skip(f"golden snapshot {path.name} rewritten")
    assert path.exists(), (
        f"missing golden snapshot {path}; run with --update-golden"
    )
    expected = path.read_text()
    assert got == expected, (
        f"trace totals for campaign {name!r} drifted from {path.name}; "
        "if the change is intentional, regenerate with --update-golden "
        "and review the diff"
    )
