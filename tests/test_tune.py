"""The auto-tuner: space enumeration, Pareto exactness, determinism.

Regenerate the pinned frontier after an intentional model change with::

    PYTHONPATH=src python -m pytest tests/test_tune.py --update-golden
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.presets import cte_arm
from repro.tune import (
    FLAG_CHOICES,
    TuneSpec,
    build_space,
    dominates,
    pareto_indices,
    placement_grid,
    tune,
)
from repro.tune.engine import decode_point
from repro.tune.space import scenario_grid
from repro.util.errors import ConfigurationError

GOLDEN = Path(__file__).parent / "golden" / "tune_frontier.json"

_ARM = cte_arm(64)


# -- Pareto frontier ----------------------------------------------------------


@st.composite
def _cost_arrays(draw):
    n = draw(st.integers(min_value=1, max_value=40))
    # a small value pool forces coordinate ties and exact duplicates,
    # the frontier's edge cases
    pool = st.sampled_from([1.0, 2.0, 3.0, 5.0, 8.0])
    times = draw(st.lists(pool, min_size=n, max_size=n))
    energies = draw(st.lists(pool, min_size=n, max_size=n))
    return np.asarray(times), np.asarray(energies)


class TestPareto:
    @given(_cost_arrays())
    @settings(max_examples=200, deadline=None)
    def test_no_returned_point_dominated_no_dominated_included(self, arrays):
        times, energies = arrays
        front = set(pareto_indices(times, energies).tolist())
        pairs = [(float(t), float(e)) for t, e in zip(times, energies)]
        for i, p in enumerate(pairs):
            strictly_dominated = any(
                dominates(q, p) and q != p for q in pairs
            )
            if i in front:
                assert not strictly_dominated, (i, p, pairs)
            else:
                assert strictly_dominated, (i, p, pairs)

    def test_duplicates_of_frontier_coordinate_all_kept(self):
        times = np.asarray([1.0, 1.0, 2.0])
        energies = np.asarray([3.0, 3.0, 5.0])
        assert pareto_indices(times, energies).tolist() == [0, 1]

    def test_single_point(self):
        assert pareto_indices(np.asarray([4.0]),
                              np.asarray([2.0])).tolist() == [0]

    def test_empty(self):
        assert pareto_indices(np.empty(0), np.empty(0)).tolist() == []

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equal-length"):
            pareto_indices(np.ones(3), np.ones(4))

    def test_merge_property_chunked(self):
        rng = np.random.default_rng(7)
        times = rng.uniform(1, 10, 200)
        energies = rng.uniform(1, 10, 200)
        whole = pareto_indices(times, energies).tolist()
        cand = []
        for lo in range(0, 200, 33):
            hi = min(lo + 33, 200)
            cand.extend(
                (pareto_indices(times[lo:hi], energies[lo:hi]) + lo).tolist())
        cand = np.asarray(sorted(cand))
        merged = cand[pareto_indices(times[cand], energies[cand])].tolist()
        assert merged == whole


# -- space enumeration --------------------------------------------------------


class TestSpace:
    def test_placement_grid_tiles_node(self):
        grid = placement_grid(48)
        assert len(grid) == 45
        assert all(48 % rpn == 0 and rpn * tpr <= 48 for rpn, tpr in grid)
        assert (48, 1) in grid and (1, 48) in grid and (4, 12) in grid

    def test_scenario_grid(self):
        assert scenario_grid(1, 0.15) == (1.0,)
        grid = scenario_grid(3, 0.2)
        assert grid == pytest.approx((0.8, 1.0, 1.2))
        with pytest.raises(ValueError, match="scenario count"):
            scenario_grid(0, 0.1)
        with pytest.raises(ValueError, match="spread"):
            scenario_grid(2, 1.5)

    def test_nemo_space_excludes_documented_failures(self):
        space = build_space("nemo", _ARM, 16, scenarios=2)
        labels = {t.compiler for t in space.templates}
        # Fujitsu errors out on NEMO (Table III); AVX-512 toolchains do
        # not target the A64FX ISA at all
        assert labels == {"GNU/8.3.1-sve", "GNU/11.0.0"}
        reasons = {e.compiler: e.reason for e in space.excluded}
        assert "errors building NEMO" in reasons["Fujitsu/1.2.26b"]
        assert "targets AVX512" in reasons["Intel/2017.4"]
        # 2 compilers x 2 vectorization modes x 45 placements
        assert len(space.templates) == 180
        # x 3 flags x 4 page policies x 2x2 scenarios x 2 pricing models
        assert space.points_per_template == 3 * 4 * 4
        assert space.n_points == 180 * 2 * 48

    def test_decode_point_round_trips(self):
        space = build_space("nemo", _ARM, 16, scenarios=2)
        per = space.points_per_template
        for point_id in (0, 1, per - 1, per, 3 * per + 17,
                         space.n_points - 1):
            info = decode_point(space, point_id)
            template = space.templates[info["template_index"]]
            assert info["compiler"] == template.compiler
            assert info["flags"] in {f.name for f in FLAG_CHOICES}
            assert info["pricing"] in ("roofline", "ecm")

    def test_page_factors_bounded(self):
        space = build_space("nemo", _ARM, 16, scenarios=1)
        for template in space.templates:
            assert all(0.0 < f <= 1.0 for f in template.page_factors)


# -- the engine ---------------------------------------------------------------


def _small_spec(**kw):
    defaults = dict(app="nemo", cluster="cte-arm", n_nodes=16, scenarios=1)
    defaults.update(kw)
    return TuneSpec(**defaults)


class TestEngine:
    def test_spec_validation(self):
        with pytest.raises(ConfigurationError, match="n_nodes"):
            TuneSpec(app="nemo", cluster="cte-arm", n_nodes=0)
        with pytest.raises(ConfigurationError, match="pricing"):
            TuneSpec(app="nemo", cluster="cte-arm", pricing=())

    def test_tune_smoke(self):
        result = tune(_small_spec())
        assert result.n_points == 180 * 2 * 12
        assert set(result.frontiers) == {"roofline", "ecm"}
        for points in result.frontiers.values():
            assert points
            # frontier sorted by time; energy non-increasing along it
            times = [p.time_s for p in points]
            assert times == sorted(times)
        assert result.best_time.time_s <= result.baseline["roofline"][0]
        rendered = result.render()
        assert "Pareto frontier [roofline]" in rendered
        assert "repro.verify" in rendered
        json.dumps(result.to_dict())  # JSON-safe

    def test_worker_count_invariance(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL_MIN_SECONDS", "0")
        spec = _small_spec(scenarios=2)
        serial = tune(spec, workers=0)
        pooled = tune(spec, workers=3)
        assert pooled.used_pool
        assert serial.frontier == pooled.frontier
        assert serial.frontiers == pooled.frontiers
        assert serial.n_points == pooled.n_points

    def test_explanations_cover_leading_points(self):
        result = tune(_small_spec(), explain_top=2)
        assert result.explanations
        head = result.explanations[0]
        assert result.frontier[0].compiler in head

    def test_unknown_cluster_and_app(self):
        with pytest.raises((ConfigurationError, KeyError)):
            tune(_small_spec(cluster="deep-thought"))
        with pytest.raises((ConfigurationError, KeyError)):
            tune(_small_spec(app="skynet"))


class TestGoldenFrontier:
    def test_pinned_frontier(self, request):
        result = tune(_small_spec())
        payload = {
            "spec": {"app": "nemo", "cluster": "cte-arm", "n_nodes": 16,
                     "scenarios": 1},
            "frontiers": {
                name: [
                    {"config": p.config, "time_s": p.time_s,
                     "energy_j": p.energy_j}
                    for p in points
                ]
                for name, points in result.frontiers.items()
            },
        }
        text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        if request.config.getoption("--update-golden"):
            GOLDEN.write_text(text)
            pytest.skip("golden frontier rewritten")
        assert GOLDEN.is_file(), (
            f"missing {GOLDEN}; run with --update-golden")
        assert text == GOLDEN.read_text(), (
            "tuner frontier drifted from tune_frontier.json; if the "
            "change is intentional, regenerate with --update-golden "
            "and review the diff")


class TestCLI:
    def test_tune_command(self, capsys):
        from repro.harness.cli import main

        assert main(["tune", "nemo", "--cluster", "cte-arm",
                     "--nodes", "16", "--scenarios", "1",
                     "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "Pareto frontier [roofline]" in out
        assert "priced" in out

    def test_tune_json(self, capsys):
        from repro.harness.cli import main

        assert main(["tune", "nemo", "--cluster", "cte-arm",
                     "--scenarios", "1", "--pricing", "roofline",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["app"] == "nemo"
        assert list(payload["frontiers"]) == ["roofline"]

    def test_tune_bad_cluster_is_error(self, capsys):
        from repro.harness.cli import main

        assert main(["tune", "nemo", "--cluster", "nonesuch"]) == 2
