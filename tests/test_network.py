"""Network models: topologies, link timing, faults, the network facade."""

import numpy as np
import pytest

from repro.network import (
    FatTreeTopology,
    FaultModel,
    TorusTopology,
    network_for,
    tofu_d,
)
from repro.network.faults import WEAK_NODE_INDEX, cte_arm_faults, random_faults
from repro.network.linkmodel import OMNIPATH_LINK, TOFUD_LINK, ProtocolModel
from repro.util.errors import ConfigurationError
from repro.util.units import KIB, MIB


class TestTorus:
    def test_tofu_dims_for_192(self):
        topo = tofu_d(192)
        assert topo.n_nodes == 192
        assert topo.dims[-3:] == (2, 3, 2)
        assert np.prod(topo.dims) == 192

    def test_coords_roundtrip(self):
        topo = TorusTopology((3, 4, 5))
        for node in range(topo.n_nodes):
            assert topo.node_at(topo.coords(node)) == node

    def test_hops_metric_properties(self):
        topo = TorusTopology((4, 3))
        for a in range(topo.n_nodes):
            assert topo.hops(a, a) == 0
            for b in range(topo.n_nodes):
                assert topo.hops(a, b) == topo.hops(b, a)
                assert topo.hops(a, b) <= topo.diameter

    def test_ring_wraparound(self):
        topo = TorusTopology((8,))
        assert topo.hops(0, 7) == 1  # wraps
        assert topo.hops(0, 4) == 4

    def test_neighbors_are_distance_one(self):
        topo = tofu_d(24)
        for nb in topo.neighbors(0):
            assert topo.hops(0, nb) == 1

    def test_diameter(self):
        assert TorusTopology((4, 4)).diameter == 4
        assert tofu_d(192).diameter == 4 // 2 + 1 + 1 + 1 + 1 + 1

    def test_tofu_rejects_non_multiple_of_12(self):
        with pytest.raises(ConfigurationError):
            tofu_d(100)

    def test_networkx_export(self):
        g = TorusTopology((3, 3)).to_networkx()
        assert g.number_of_nodes() == 9
        # 2-D torus: every node has degree 4 (radix-3 rings).
        assert all(d == 4 for _, d in g.degree())

    def test_average_hops_positive(self):
        assert 0 < TorusTopology((4, 4)).average_hops() <= 4


class TestFatTree:
    def test_hop_counts(self):
        topo = FatTreeTopology(96, nodes_per_leaf=24)
        assert topo.hops(0, 0) == 0
        assert topo.hops(0, 5) == 2  # same leaf
        assert topo.hops(0, 50) == 4  # cross leaves
        assert topo.diameter == 4

    def test_single_leaf_diameter(self):
        assert FatTreeTopology(8, nodes_per_leaf=24).diameter == 2

    def test_uplink_share(self):
        topo = FatTreeTopology(96, nodes_per_leaf=24, oversubscription=2.0)
        assert topo.uplink_share(1) == 1.0
        assert topo.uplink_share(12) == 1.0  # within taper capacity
        assert topo.uplink_share(24) == pytest.approx(0.5)
        with pytest.raises(ConfigurationError):
            topo.uplink_share(0)

    def test_neighbors_same_leaf(self):
        topo = FatTreeTopology(48, nodes_per_leaf=24)
        assert set(topo.neighbors(0)) == set(range(1, 24))


class TestLinkModel:
    def test_time_monotone_in_size(self):
        sizes = [64, 1024, 64 * KIB, MIB, 16 * MIB]
        times = [TOFUD_LINK.p2p_time(s, 2) for s in sizes]
        assert times == sorted(times)

    def test_time_monotone_in_hops(self):
        assert TOFUD_LINK.p2p_time(1024, 1) < TOFUD_LINK.p2p_time(1024, 6)

    def test_bandwidth_approaches_peak(self):
        bw = 64 * MIB / TOFUD_LINK.p2p_time(64 * MIB, 1)
        assert 0.8 * 6.8e9 < bw < 6.8e9

    def test_small_messages_latency_bound(self):
        bw = 256 / TOFUD_LINK.p2p_time(256, 1)
        assert bw < 0.2e9

    def test_shared_memory_faster_than_network(self):
        assert TOFUD_LINK.p2p_time(4096, 0) < TOFUD_LINK.p2p_time(4096, 1)

    def test_zero_size_rejected(self):
        with pytest.raises(ConfigurationError):
            TOFUD_LINK.p2p_time(0, 1)

    def test_protocol_bimodal_window(self):
        proto = ProtocolModel()
        factors = {
            proto.factor(a, b, 64 * KIB) for a in range(30) for b in range(30)
        }
        assert factors == {1.0, proto.slow_factor}

    def test_protocol_deterministic(self):
        proto = ProtocolModel()
        assert proto.factor(3, 7, 8192) == proto.factor(3, 7, 8192)

    def test_omnipath_no_bimodality(self):
        factors = {
            OMNIPATH_LINK.protocol.factor(a, b, 64 * KIB)
            for a in range(20) for b in range(20)
        }
        assert factors == {1.0}

    def test_large_message_jitter(self):
        proto = ProtocolModel()
        fs = [proto.factor(a, a + 1, 4 * MIB) for a in range(50)]
        assert max(fs) <= 1.0 and min(fs) >= 1.0 - proto.large_jitter
        assert len(set(fs)) > 10  # genuinely spread


class TestFaults:
    def test_pair_factor(self):
        fm = FaultModel().degrade_receiver(3, 0.25).degrade_sender(5, 0.5)
        assert fm.pair_factor(0, 3) == 0.25
        assert fm.pair_factor(5, 0) == 0.5
        assert fm.pair_factor(5, 3) == 0.125
        assert fm.pair_factor(0, 1) == 1.0

    def test_invalid_factor(self):
        with pytest.raises(ConfigurationError):
            FaultModel().degrade_receiver(0, -0.1)
        with pytest.raises(ConfigurationError):
            FaultModel().degrade_receiver(0, 1.5)

    def test_zero_factor_means_unreachable(self):
        fm = FaultModel().degrade_receiver(3, 0.0)
        assert fm.pair_factor(0, 3) == 0.0
        assert fm.has_unreachable()
        fm.restore(3)
        assert fm.pair_factor(0, 3) == 1.0
        assert not fm.has_unreachable()

    def test_cte_arm_default_fault(self):
        fm = cte_arm_faults()
        assert fm.recv_factors == {WEAK_NODE_INDEX: 0.25}
        assert not fm.send_factors

    def test_random_faults_reproducible(self):
        a = random_faults(48, 3, seed=9)
        b = random_faults(48, 3, seed=9)
        assert a.recv_factors == b.recv_factors

    def test_random_faults_bounds(self):
        with pytest.raises(ConfigurationError):
            random_faults(10, 11)


class TestNetworkModel:
    def test_network_for_arm_has_weak_node(self, arm):
        net = network_for(arm)
        assert isinstance(net.topology, TorusTopology)
        assert WEAK_NODE_INDEX in net.faults.recv_factors

    def test_healthy_override(self, arm):
        net = network_for(arm, healthy=True)
        assert net.faults.is_healthy()

    def test_small_partition_drops_fault(self, arm):
        net = network_for(arm, n_nodes=48)
        assert net.faults.is_healthy()  # weak node index 107 >= 48

    def test_mn4_is_fat_tree(self, mn4):
        net = network_for(mn4, n_nodes=96)
        assert isinstance(net.topology, FatTreeTopology)
        assert net.faults.is_healthy()

    def test_weak_node_asymmetry(self, arm):
        net = network_for(arm)
        healthy = net.measured_bandwidth(0, 50, 256)
        to_weak = net.measured_bandwidth(0, WEAK_NODE_INDEX, 256)
        from_weak = net.measured_bandwidth(WEAK_NODE_INDEX, 0, 256)
        assert to_weak < 0.5 * healthy
        assert from_weak > 0.7 * healthy

    def test_sendrecv_is_max_of_directions(self, arm):
        net = network_for(arm)
        t = net.sendrecv_time(0, WEAK_NODE_INDEX, 4096)
        assert t == pytest.approx(net.p2p_time(0, WEAK_NODE_INDEX, 4096))

    def test_tofu_partition_rounds_to_unit_group(self, arm):
        net = network_for(arm, n_nodes=17)
        assert net.n_nodes == 24

    def test_invalid_partition(self, arm):
        with pytest.raises(ConfigurationError):
            network_for(arm, n_nodes=0)
