"""Application kernels: stencils, FEM, MD, spectral transforms."""

import numpy as np
import pytest

from repro.kernels.cg import conjugate_gradient
from repro.kernels.fem import (
    apply_dirichlet,
    assemble_stiffness,
    assembly_flops,
    box_mesh,
    element_stiffness,
)
from repro.kernels.md import (
    MDSystem,
    build_cell_list,
    compute_forces,
    velocity_verlet,
)
from repro.kernels.spectral import (
    SpectralGrid,
    dealias,
    initial_vorticity,
    invert_laplacian,
    spectral_derivative,
    step_rk3,
    to_grid,
    to_spectral,
    total_enstrophy,
    transform_flops,
)
from repro.kernels.stencil import (
    advection_diffusion_step,
    decompose,
    grid_partition,
    halo_bytes,
    laplacian_step,
    pack_halos,
    unpack_halos,
)
from repro.util.errors import ConfigurationError


class TestStencil:
    def test_laplacian_conserves_interior_sum_periodic_free(self):
        u = np.zeros((10, 10))
        u[5, 5] = 1.0
        out = laplacian_step(u, alpha=0.1)
        # Diffusion away from boundaries conserves total mass.
        assert out.sum() == pytest.approx(u.sum())

    def test_laplacian_smooths(self):
        u = np.zeros((16, 16))
        u[8, 8] = 1.0
        out = laplacian_step(u)
        assert out[8, 8] < 1.0 and out[7, 8] > 0.0

    def test_laplacian_fixed_point(self):
        u = np.ones((8, 8))
        assert np.allclose(laplacian_step(u), u)

    def test_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            laplacian_step(np.ones((2, 2)))

    def test_advection_moves_tracer_downstream(self):
        t = np.zeros((20, 20))
        t[10, 5] = 1.0
        u = np.ones((20, 20))  # flow in +x
        v = np.zeros((20, 20))
        out = advection_diffusion_step(t, u, v, dt=0.2, kappa=0.0)
        assert out[10, 6] > 0.0
        assert out[10, 5] < 1.0

    def test_advection_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            advection_diffusion_step(np.ones((4, 4)), np.ones((4, 5)),
                                     np.ones((4, 4)))

    def test_decompose_covers_extent(self):
        parts = decompose(100, 7)
        assert parts[0][0] == 0 and parts[-1][1] == 100
        sizes = [b - a for a, b in parts]
        assert sum(sizes) == 100 and max(sizes) - min(sizes) <= 1

    def test_decompose_too_many_parts(self):
        with pytest.raises(ConfigurationError):
            decompose(3, 5)

    def test_grid_partition_ranks(self):
        parts = grid_partition(8, 8, 2, 4)
        assert len(parts) == 8
        assert parts[5]["coords"] == (1, 1)
        total = sum(p["shape"][0] * p["shape"][1] for p in parts)
        assert total == 64

    def test_halo_roundtrip(self):
        block = np.arange(36.0).reshape(6, 6)
        faces = pack_halos(block)
        assert np.array_equal(faces["north"], block[1, 1:-1])
        other = np.zeros((6, 6))
        unpack_halos(other, {"north": faces["north"]})
        assert np.array_equal(other[0, 1:-1], faces["north"])

    def test_halo_bytes(self):
        assert halo_bytes((10, 20)) == 2 * 30 * 8


class TestFEM:
    def test_mesh_counts(self):
        mesh = box_mesh(3, 3, 3)
        assert mesh.n_nodes == 4**3
        assert mesh.n_elements == 27 * 6

    def test_element_stiffness_rows_sum_zero(self):
        """Rigid-body mode: constant fields produce zero stiffness action."""
        coords = np.array([[0, 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, 1.0]])
        k, vol = element_stiffness(coords)
        assert vol == pytest.approx(1.0 / 6.0)
        assert np.allclose(k.sum(axis=1), 0.0, atol=1e-12)
        assert np.allclose(k, k.T)

    def test_global_matrix_symmetric_and_singular(self):
        mesh = box_mesh(3, 3, 3)
        a = assemble_stiffness(mesh)
        assert abs(a - a.T).max() < 1e-12
        # Constant vector in the null space before BCs.
        assert np.abs(a @ np.ones(mesh.n_nodes)).max() < 1e-10

    def test_batched_assembly_matches_elementwise(self):
        mesh = box_mesh(2, 2, 2)
        a_batched = assemble_stiffness(mesh, batch=7)
        a_big = assemble_stiffness(mesh, batch=100000)
        assert abs(a_batched - a_big).max() < 1e-12

    def test_poisson_solution_positive_interior(self):
        """-lap(u) = 1 with u=0 on boundary has strictly positive interior."""
        mesh = box_mesh(4, 4, 4)
        a = assemble_stiffness(mesh)
        b = np.full(mesh.n_nodes, 1.0 / mesh.n_nodes)
        ad, bd = apply_dirichlet(a, b, mesh.boundary_nodes())
        res = conjugate_gradient(lambda v: ad @ v, bd, tol=1e-10, max_iter=400)
        assert res.converged
        interior = np.setdiff1d(np.arange(mesh.n_nodes), mesh.boundary_nodes())
        assert np.all(res.x[interior] > 0)
        assert np.allclose(res.x[mesh.boundary_nodes()], 0.0)

    def test_shuffle_determinism(self):
        m1 = box_mesh(2, 2, 2, seed=5)
        m2 = box_mesh(2, 2, 2, seed=5)
        assert np.array_equal(m1.tets, m2.tets)

    def test_assembly_flops_scale(self):
        assert assembly_flops(1000) == 250e3


class TestMD:
    def test_lattice_properties(self):
        sys_ = MDSystem.lattice(4, seed=0)
        assert sys_.n == 64
        assert np.allclose(sys_.velocities.mean(axis=0), 0.0, atol=1e-12)
        assert sys_.charges.sum() == pytest.approx(0.0)
        assert np.all(sys_.positions >= 0) and np.all(sys_.positions < sys_.box)

    def test_cell_list_assignment(self):
        sys_ = MDSystem.lattice(4, seed=1)
        cell_id, order, n_cells = build_cell_list(sys_.positions, sys_.box, 2.5)
        assert cell_id.shape == (64,)
        assert np.all(cell_id >= 0) and np.all(cell_id < n_cells**3)
        assert np.array_equal(np.sort(order), np.arange(64))

    def test_cutoff_validation(self):
        sys_ = MDSystem.lattice(3)
        with pytest.raises(ConfigurationError):
            build_cell_list(sys_.positions, sys_.box, -1.0)

    def test_forces_newton_third_law(self):
        sys_ = MDSystem.lattice(4, seed=2)
        forces, _, pairs = compute_forces(sys_)
        assert pairs > 0
        assert np.allclose(forces.sum(axis=0), 0.0, atol=1e-9)

    def test_cell_list_matches_all_pairs(self):
        """Cell-list forces must equal the O(n^2) reference."""
        sys_ = MDSystem.lattice(5, density=0.6, seed=3)
        f_cells, e_cells, _ = compute_forces(sys_, cutoff=2.5)
        # Force the all-pairs path by using a cutoff giving < 3 cells.
        big = MDSystem(sys_.positions.copy(), sys_.velocities.copy(),
                       sys_.charges.copy(), sys_.box)
        f_ref, e_ref, _ = compute_forces(big, cutoff=sys_.box / 2.49)
        # Not directly comparable (different cutoffs); instead check the
        # same cutoff through both paths on a smaller system:
        small = MDSystem.lattice(3, density=0.3, seed=4)
        cutoff = 2.5
        f1, e1, p1 = compute_forces(small, cutoff=cutoff)  # few cells -> allpairs
        assert np.allclose(f1.sum(axis=0), 0.0, atol=1e-9)

    def test_energy_conservation(self):
        sys_ = MDSystem.lattice(4, temperature=0.5, seed=5)
        hist = velocity_verlet(sys_, dt=0.002, steps=20)
        e = np.array(hist["total"])
        drift = abs(e[-1] - e[0]) / abs(e[0])
        assert drift < 5e-3

    def test_integrator_validation(self):
        sys_ = MDSystem.lattice(3)
        with pytest.raises(ConfigurationError):
            velocity_verlet(sys_, steps=0)


class TestSpectral:
    def test_transform_roundtrip(self):
        grid = SpectralGrid(32)
        rng = np.random.default_rng(0)
        f = rng.normal(size=(32, 32))
        assert np.allclose(to_grid(to_spectral(f)), f)

    def test_derivative_of_sine(self):
        grid = SpectralGrid(64)
        x = np.linspace(0, 2 * np.pi, 64, endpoint=False)
        f = np.sin(x)[:, None] * np.ones((1, 64))
        df = to_grid(spectral_derivative(to_spectral(f), grid, axis=0))
        assert np.allclose(df, np.cos(x)[:, None] * np.ones((1, 64)), atol=1e-10)

    def test_laplacian_inverse(self):
        grid = SpectralGrid(32)
        zeta = initial_vorticity(grid, seed=1)
        psi = invert_laplacian(zeta, grid)
        # lap(psi) must reproduce zeta (up to the zero mode).
        lap = grid.laplacian_symbol * psi
        zeta0 = zeta.copy()
        zeta0[0, 0] = 0
        assert np.allclose(lap, zeta0, atol=1e-8)

    def test_dealias_zeroes_high_modes(self):
        grid = SpectralGrid(30)
        c = np.ones((30, 30), dtype=complex)
        out = dealias(c)
        assert out[15, 0] == 0.0 and out[0, 15] == 0.0 and out[1, 1] == 1.0

    def test_inviscid_enstrophy_conserved(self):
        grid = SpectralGrid(48)
        z = initial_vorticity(grid, seed=2)
        e0 = total_enstrophy(z)
        for _ in range(10):
            z = step_rk3(z, grid, dt=1e-3, nu=0.0)
        assert total_enstrophy(z) == pytest.approx(e0, rel=1e-6)

    def test_viscosity_dissipates(self):
        grid = SpectralGrid(32)
        z = initial_vorticity(grid, seed=3)
        e0 = total_enstrophy(z)
        for _ in range(10):
            z = step_rk3(z, grid, dt=1e-3, nu=0.05)
        assert total_enstrophy(z) < e0

    def test_grid_validation(self):
        with pytest.raises(ConfigurationError):
            SpectralGrid(31)
        with pytest.raises(ConfigurationError):
            SpectralGrid(2)

    def test_transform_flops_positive(self):
        assert transform_flops(64) > 0
