"""IR optimizer passes: constant folding, op fusion, loop collapsing.

Unit tests pin the rewrite rules' edge cases (zero-trip loops, mixed-
phase adjacency, roofline-arm mixing); the hypothesis property at the
bottom asserts every pass preserves the scalar ``AnalyticBackend``
output on random IR programs within the documented 1e-12 band
(``fold_constants`` is held to bit-exactness).
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings

from repro.ir import (
    AnalyticBackend,
    Barrier,
    CommOp,
    ComputeOp,
    Loop,
    MemOp,
    PASS_VERSION,
    Phase,
    Program,
    SerialOp,
    collapse_loops,
    fold_constants,
    fuse_ops,
    op_count,
    optimize_program,
)
from repro.machine.presets import cte_arm

from .strategies import ir_programs

_CLUSTER = cte_arm(8)


def _prog(*items, steps=1):
    return Program(name="t", body=tuple(items), steps=steps)


def _run(program):
    return AnalyticBackend().run(program, _CLUSTER, 4, check_memory=False)


def _phases(program):
    """Flattened (name, mult, ops) walk."""
    return [(ph.name, mult, ph.ops) for ph, mult in program.iter_phases()]


class TestFoldConstants:
    def test_serial_chain_merges_left_to_right(self):
        p = _prog(Phase("a", (SerialOp(1e-6), SerialOp(2e-6),
                             SerialOp(3e-6))))
        folded = fold_constants(p)
        (name, _, ops), = _phases(folded)
        assert name == "a"
        assert ops == (SerialOp((1e-6 + 2e-6) + 3e-6),)

    def test_zero_ops_dropped_but_barrier_kept(self):
        p = _prog(Phase("a", (SerialOp(0.0), MemOp(0.0), Barrier(),
                             CommOp("allreduce", 8, count=0.0),
                             ComputeOp())))
        folded = fold_constants(p)
        (_, _, ops), = _phases(folded)
        assert ops == (Barrier(),)

    def test_zero_trip_loop_preserves_phase_names(self):
        p = _prog(Loop(0, (Phase("gone", (SerialOp(1.0),)),)))
        folded = fold_constants(p)
        assert _phases(folded) == [("gone", 1, ())]
        result = _run(folded)
        assert result.phase_seconds == {"gone": 0.0}
        assert result.phase_seconds == _run(p).phase_seconds

    def test_single_trip_loop_inlined(self):
        inner = Phase("a", (SerialOp(1e-6),))
        folded = fold_constants(_prog(Loop(1, (inner,))))
        assert folded.body == (inner,)

    def test_empty_phase_preserved(self):
        p = _prog(Phase("empty", ()))
        assert fold_constants(p).body == p.body

    def test_fold_is_bit_exact(self):
        p = _prog(
            Phase("a", (SerialOp(1e-7), SerialOp(3.3e-6), SerialOp(0.0),
                        ComputeOp(seconds=5e-6))),
            Loop(1, (Phase("b", (MemOp(4096.0), CommOp("ring", 64),)),)),
        )
        base, folded = _run(p), _run(fold_constants(p))
        assert folded.phase_seconds == base.phase_seconds
        assert folded.elapsed == base.elapsed


class TestFuseOps:
    def test_memops_fuse(self):
        p = _prog(Phase("a", (MemOp(100.0), MemOp(28.0))))
        (_, _, ops), = _phases(fuse_ops(p))
        assert ops == (MemOp(128.0),)

    def test_seconds_compute_fuses_on_equal_imbalance(self):
        p = _prog(Phase("a", (ComputeOp(seconds=1e-6, imbalance=1.5),
                              ComputeOp(seconds=2e-6, imbalance=1.5))))
        (_, _, ops), = _phases(fuse_ops(p))
        assert ops == (ComputeOp(seconds=3e-6, imbalance=1.5),)

    def test_imbalance_mismatch_not_fused(self):
        p = _prog(Phase("a", (ComputeOp(seconds=1e-6, imbalance=1.0),
                              ComputeOp(seconds=2e-6, imbalance=1.5))))
        (_, _, ops), = _phases(fuse_ops(p))
        assert len(ops) == 2

    def test_adjacent_ops_in_different_phases_not_fused(self):
        p = _prog(Phase("a", (MemOp(100.0),)), Phase("b", (MemOp(28.0),)))
        fused = fuse_ops(p)
        assert _phases(fused) == _phases(p)

    def test_compute_and_mem_never_fuse(self):
        # roofline: pricing max(f, b1) then b2 separately differs from
        # max(f, b1 + b2) — fusing across the max is wrong.
        p = _prog(Phase("a", (ComputeOp(flops=1e9, rate_per_core=1e9),
                              MemOp(4096.0))))
        (_, _, ops), = _phases(fuse_ops(p))
        assert len(ops) == 2

    def test_mixed_roofline_arms_not_fused(self):
        a = ComputeOp(flops=1e9, bytes_moved=0.0, rate_per_core=1e9)
        b = ComputeOp(flops=0.0, bytes_moved=4096.0, rate_per_core=1e9)
        (_, _, ops), = _phases(fuse_ops(_prog(Phase("a", (a, b)))))
        assert len(ops) == 2

    def test_pure_flops_pair_fused(self):
        a = ComputeOp(flops=1e9, rate_per_core=1e9)
        b = ComputeOp(flops=2e9, rate_per_core=1e9)
        (_, _, ops), = _phases(fuse_ops(_prog(Phase("a", (a, b)))))
        assert ops == (ComputeOp(flops=3e9, rate_per_core=1e9),)


class TestCollapseLoops:
    def test_invariant_loop_collapses_to_scaled_phase(self):
        p = _prog(Loop(10, (Phase("a", (ComputeOp(seconds=1e-6),
                                        MemOp(64.0),
                                        CommOp("allreduce", 8),)),)))
        collapsed = collapse_loops(p)
        assert _phases(collapsed) == [
            ("a", 1, (ComputeOp(seconds=1e-6 * 10), MemOp(640.0),
                      CommOp("allreduce", 8, count=10.0)))]

    def test_barrier_blocks_collapse(self):
        p = _prog(Loop(10, (Phase("a", (Barrier(),)),)))
        assert collapse_loops(p).body == p.body

    def test_fractional_comm_count_blocks_collapse(self):
        # the DES lowering subsamples count < 1 by step index, so k
        # iterations are NOT k scaled occurrences
        p = _prog(Loop(10, (Phase("a", (CommOp("ring", 64, count=0.5),)),)))
        assert collapse_loops(p).body == p.body

    def test_nested_loops_collapse_innermost_first(self):
        p = _prog(Loop(3, (Loop(4, (Phase("a", (SerialOp(1e-6),)),)),)))
        collapsed = collapse_loops(p)
        (name, mult, ops), = _phases(collapsed)
        assert (name, mult) == ("a", 1)
        assert ops[0].seconds == pytest.approx(12e-6)


class TestOpCountAndVersion:
    def test_op_count_counts_loop_multiplicity_free(self):
        p = _prog(Phase("a", (SerialOp(1e-6), Barrier())),
                  Loop(5, (Phase("b", (MemOp(1.0),)),)))
        assert op_count(p) == 3

    def test_optimize_program_shrinks_loopy_program(self):
        p = _prog(Loop(100, (Phase("a", (SerialOp(1e-6), SerialOp(2e-6),
                                         MemOp(10.0), MemOp(20.0))),)),
                  steps=100)
        optimized = optimize_program(p)
        assert op_count(optimized) < op_count(p)
        assert _run(optimized).elapsed == pytest.approx(
            _run(p).elapsed, rel=1e-12)

    def test_pass_version_is_versioned(self):
        assert isinstance(PASS_VERSION, int) and PASS_VERSION >= 1


class TestDESOptimize:
    def test_des_optimize_kwarg_matches_unoptimized(self):
        from repro.ir.desbackend import DESBackend

        p = _prog(Loop(50, (Phase("a", (ComputeOp(seconds=1e-6),)),)),
                  steps=50)
        backend = DESBackend()
        base = backend.run(p, _CLUSTER, 2, check_memory=False)
        fast = backend.run(p, _CLUSTER, 2, check_memory=False,
                           optimize=True)
        assert fast.elapsed == pytest.approx(base.elapsed, rel=1e-9)


def _assert_output_close(base, out, *, rel):
    assert set(out.phase_seconds) == set(base.phase_seconds)
    for name, val in base.phase_seconds.items():
        assert math.isclose(out.phase_seconds[name], val,
                            rel_tol=rel, abs_tol=0.0), name
    assert math.isclose(out.elapsed, base.elapsed, rel_tol=rel,
                        abs_tol=0.0)


@settings(max_examples=40, deadline=None)
@given(program=ir_programs(rich=True))
def test_every_pass_preserves_scalar_output(program):
    base = _run(program)
    folded = _run(fold_constants(program))
    assert folded.phase_seconds == base.phase_seconds  # fold is exact
    assert folded.elapsed == base.elapsed
    for rewrite in (fuse_ops, collapse_loops, optimize_program):
        _assert_output_close(base, _run(rewrite(program)), rel=1e-12)
