"""Domain-decomposed MD and distributed spectral mini-apps."""

import numpy as np
import pytest

from repro.apps.miniapp_md import md_miniapp
from repro.apps.miniapp_spectral import dfft_forward, dfft_inverse, spectral_miniapp
from repro.kernels.md import MDSystem, velocity_verlet
from repro.kernels.spectral import SpectralGrid, initial_vorticity, step_rk3
from repro.simmpi import RankMapping, World
from repro.util.errors import ConfigurationError


def _world(arm_small, p):
    n_nodes = min(p, 4)
    return World(RankMapping(arm_small, n_nodes=n_nodes,
                             ranks_per_node=-(-p // n_nodes)))


class TestMDMiniapp:
    @pytest.mark.parametrize("p,n_side", [(1, 6), (3, 7), (5, 8)])
    def test_matches_sequential_integrator(self, arm_small, p, n_side):
        world = _world(arm_small, p)
        res = world.run(md_miniapp, n_side=n_side, steps=4, seed=9)
        n = n_side**3
        pos = np.zeros((n, 3))
        vel = np.zeros((n, 3))
        for r in res.rank_results:
            pos[r["ids"]] = r["positions"]
            vel[r["ids"]] = r["velocities"]
        assert sum(r["n_owned"] for r in res.rank_results) == n
        ref = MDSystem.lattice(n_side, seed=9)
        velocity_verlet(ref, dt=0.002, steps=4, cutoff=2.5)
        assert np.abs(pos - ref.positions).max() < 1e-10
        assert np.abs(vel - ref.velocities).max() < 1e-10

    def test_energy_series_matches_sequential(self, arm_small):
        world = _world(arm_small, 3)
        res = world.run(md_miniapp, n_side=7, steps=4, seed=9)
        ref = MDSystem.lattice(7, seed=9)
        hist = velocity_verlet(ref, dt=0.002, steps=4, cutoff=2.5)
        par = np.array(res.rank_results[0]["energies"])
        seq = np.array(hist["total"])
        assert np.abs(par - seq).max() / abs(seq[0]) < 1e-12

    def test_energies_agree_across_ranks(self, arm_small):
        world = _world(arm_small, 3)
        res = world.run(md_miniapp, n_side=7, steps=3, seed=9)
        series = {tuple(np.round(r["energies"], 12)) for r in res.rank_results}
        assert len(series) == 1

    def test_too_many_slabs_rejected(self, arm_small):
        """Cutoff spanning more than half the ring of slabs is refused
        (ghosts would alias)."""
        world = _world(arm_small, 4)
        with pytest.raises(ConfigurationError):
            world.run(md_miniapp, n_side=6, steps=1)  # slab < cutoff, 2 pulses

    def test_migration_preserves_atom_count(self, arm_small):
        world = _world(arm_small, 3)
        res = world.run(md_miniapp, n_side=7, steps=6, seed=3)
        ids = np.concatenate([r["ids"] for r in res.rank_results])
        assert np.array_equal(np.sort(ids), np.arange(7**3))


class TestSpectralMiniapp:
    @pytest.mark.parametrize("p,n", [(2, 16), (4, 32)])
    def test_matches_sequential_solver(self, arm_small, p, n):
        world = _world(arm_small, p)
        steps = 3
        res = world.run(spectral_miniapp, n=n, steps=steps, seed=2)
        full = np.zeros((n, n), dtype=complex)
        nr = n // p
        for r in res.rank_results:
            full[:, r["col0"]: r["col0"] + nr] = r["block"]
        grid = SpectralGrid(n)
        z = initial_vorticity(grid, seed=2)
        for _ in range(steps):
            z = step_rk3(z, grid, dt=1e-3, nu=0.0)
        assert np.abs(full - z).max() / np.abs(z).max() < 1e-12

    def test_inviscid_enstrophy_conserved(self, arm_small):
        world = _world(arm_small, 4)
        res = world.run(spectral_miniapp, n=32, steps=5, nu=0.0)
        e = res.rank_results[0]["enstrophy"]
        assert abs(e[-1] - e[0]) / e[0] < 1e-8

    def test_viscosity_dissipates(self, arm_small):
        world = _world(arm_small, 2)
        res = world.run(spectral_miniapp, n=16, steps=5, nu=0.05)
        e = res.rank_results[0]["enstrophy"]
        assert e[-1] < e[0]

    def test_distributed_fft_roundtrip(self, arm_small):
        n = 16

        def program(comm):
            nr = n // comm.size
            rng = np.random.default_rng(comm.rank)
            rows = np.random.default_rng(0).normal(size=(n, n))[
                comm.rank * nr : (comm.rank + 1) * nr, :]
            spec = yield from dfft_forward(comm, rows, n)
            back = yield from dfft_inverse(comm, spec, n)
            return float(np.abs(back - rows).max())

        world = _world(arm_small, 4)
        res = world.run(program)
        assert max(res.rank_results) < 1e-12

    def test_indivisible_grid_rejected(self, arm_small):
        world = _world(arm_small, 3)
        with pytest.raises(ConfigurationError):
            world.run(spectral_miniapp, n=16)

    def test_alltoall_transposes_traced(self, arm_small):
        world = _world(arm_small, 2)
        res = world.run(spectral_miniapp, n=16, steps=1)
        transposes = [r for r in res.trace if r.phase.endswith(":alltoall")]
        # 5 transposes per RK stage x 3 stages + 1 for enstrophy, per rank.
        assert len(transposes) == 2 * 16
