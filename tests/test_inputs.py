"""Input-set registry: provenance data consistent with the app models."""

import pytest

from repro.apps import ALL_APPS, get_app
from repro.apps.inputs import INPUT_SETS, get_input, inputs_for, inputs_table
from repro.apps.openifs import OpenIFSModel
from repro.util.errors import ConfigurationError


def test_every_application_has_an_input():
    covered = {i.application for i in INPUT_SETS.values()}
    assert covered == set(ALL_APPS)


def test_min_nodes_consistent_with_models(arm):
    """The registry's NP boundaries must match what the models compute."""
    for inp in INPUT_SETS.values():
        if inp.application == "openifs":
            app = OpenIFSModel(inp.name if inp.name.startswith("T") else
                               "TC0511L91")
        else:
            app = get_app(inp.application)
        assert app.min_nodes(arm) == inp.min_cte_arm_nodes, inp.name


def test_figures_reference_known_experiments():
    from repro.harness import list_experiments

    known = {e.split("_")[0] for e in list_experiments()}
    for inp in INPUT_SETS.values():
        for fig in inp.figures:
            assert fig in known, f"{inp.name} references unknown {fig}"


def test_lookup_and_errors():
    assert get_input("TestCaseB").application == "alya"
    assert len(inputs_for("openifs")) == 2
    with pytest.raises(ConfigurationError):
        get_input("TestCaseZ")


def test_table_renders():
    text = inputs_table().render()
    assert "lignocellulose-rf" in text and "132 million" in text
