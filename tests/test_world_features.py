"""World-level features: NIC contention and compute noise."""

import numpy as np
import pytest

from repro.simmpi import RankMapping, World
from repro.util.errors import ConfigurationError
from repro.util.units import MIB


def _two_senders(comm):
    """Two ranks on node 0 each push a large message to node 1."""
    if comm.rank in (0, 1):
        yield from comm.send(comm.rank + 2, None, size=4 * MIB, tag=comm.rank)
    else:
        yield from comm.recv(comm.rank - 2, tag=comm.rank - 2)


class TestNICContention:
    def test_contention_serializes_same_node_sends(self, arm_small):
        free = World(RankMapping(arm_small, n_nodes=2, ranks_per_node=2),
                     nic_contention=False)
        shared = World(RankMapping(arm_small, n_nodes=2, ranks_per_node=2),
                       nic_contention=True)
        t_free = free.run(_two_senders).elapsed
        t_shared = shared.run(_two_senders).elapsed
        # Serialized injection: roughly twice the time of free overlap.
        assert t_shared > 1.6 * t_free

    def test_contention_transparent_for_single_sender(self, arm_small):
        def program(comm):
            if comm.rank == 0:
                yield from comm.send(1, None, size=4 * MIB)
            else:
                yield from comm.recv(0)

        t1 = World(RankMapping(arm_small, n_nodes=2, ranks_per_node=1),
                   nic_contention=False).run(program).elapsed
        t2 = World(RankMapping(arm_small, n_nodes=2, ranks_per_node=1),
                   nic_contention=True).run(program).elapsed
        assert t2 == pytest.approx(t1, rel=1e-9)

    def test_eager_messages_bypass_nic_queue(self, arm_small):
        def program(comm):
            if comm.rank in (0, 1):
                yield from comm.send(comm.rank + 2, None, size=512,
                                     tag=comm.rank)
            else:
                yield from comm.recv(comm.rank - 2, tag=comm.rank - 2)

        t_free = World(RankMapping(arm_small, n_nodes=2, ranks_per_node=2),
                       nic_contention=False).run(program).elapsed
        t_shared = World(RankMapping(arm_small, n_nodes=2, ranks_per_node=2),
                         nic_contention=True).run(program).elapsed
        assert t_shared == pytest.approx(t_free, rel=1e-9)

    def test_payload_still_delivered(self, arm_small):
        def program(comm):
            if comm.rank == 0:
                yield from comm.send(1, np.arange(100000.0))
                return None
            return (yield from comm.recv(0))

        world = World(RankMapping(arm_small, n_nodes=2, ranks_per_node=1),
                      nic_contention=True)
        res = world.run(program)
        assert np.array_equal(res.rank_results[1], np.arange(100000.0))


class TestHeterogeneity:
    def test_slow_node_stretches_critical_path(self, arm_small):
        from repro.bench.variability import HeterogeneityModel

        def program(comm):
            yield from comm.compute(0.1)
            yield from comm.barrier()
            return comm.now

        het = HeterogeneityModel(node_factors={1: 0.5})
        healthy = World(RankMapping(arm_small, n_nodes=2, ranks_per_node=2))
        degraded = World(RankMapping(arm_small, n_nodes=2, ranks_per_node=2),
                         heterogeneity=het)
        t_h = healthy.run(program).elapsed
        t_d = degraded.run(program).elapsed
        # the 0.5x node doubles its compute; the barrier drags everyone.
        assert t_d == pytest.approx(t_h + 0.1, rel=0.05)

    def test_healthy_model_is_identity(self, arm_small):
        from repro.bench.variability import healthy

        def program(comm):
            yield from comm.compute(0.05)
            return comm.now

        w1 = World(RankMapping(arm_small, n_nodes=2, ranks_per_node=1))
        w2 = World(RankMapping(arm_small, n_nodes=2, ranks_per_node=1),
                   heterogeneity=healthy())
        assert w1.run(program).elapsed == w2.run(program).elapsed

    def test_miniapp_results_unchanged_by_straggler(self, arm_small):
        """Heterogeneity shifts time, never numerics."""
        import numpy as np

        from repro.apps.miniapps import sequential_stencil, stencil_miniapp
        from repro.bench.variability import HeterogeneityModel

        het = HeterogeneityModel(node_factors={0: 0.4})
        world = World(RankMapping(arm_small, n_nodes=2, ranks_per_node=2),
                      heterogeneity=het)
        res = world.run(stencil_miniapp, global_shape=(32, 32), steps=4)
        glued = np.zeros((32, 32))
        for r in res.rank_results:
            (y0, y1), (x0, x1) = r["rows"], r["cols"]
            glued[y0:y1, x0:x1] = r["block"]
        assert np.abs(glued - sequential_stencil((32, 32), steps=4)).max() \
            < 1e-13


class TestComputeNoise:
    def _elapsed(self, arm_small, noise, seed=1):
        def program(comm):
            yield from comm.compute(0.1)

        world = World(RankMapping(arm_small, n_nodes=1, ranks_per_node=4),
                      compute_noise=noise, noise_seed=seed)
        return world.run(program).elapsed

    def test_no_noise_exact(self, arm_small):
        assert self._elapsed(arm_small, 0.0) == pytest.approx(0.1)

    def test_noise_inflates_critical_path(self, arm_small):
        noisy = self._elapsed(arm_small, 0.2)
        assert 0.1 < noisy <= 0.12

    def test_noise_deterministic_per_seed(self, arm_small):
        assert self._elapsed(arm_small, 0.2, seed=7) == self._elapsed(
            arm_small, 0.2, seed=7)
        assert self._elapsed(arm_small, 0.2, seed=7) != self._elapsed(
            arm_small, 0.2, seed=8)

    def test_noise_validation(self, arm_small):
        with pytest.raises(ConfigurationError):
            World(RankMapping(arm_small, n_nodes=1, ranks_per_node=1),
                  compute_noise=1.5)

    def test_noise_amplifies_imbalance_at_barriers(self, arm_small):
        """OS jitter costs more with more synchronizing ranks — the classic
        noise-amplification effect the paper's no-variability checks guard
        against."""

        def program(comm):
            for _ in range(10):
                yield from comm.compute(1e-3)
                yield from comm.barrier()

        def run(rpn):
            world = World(RankMapping(arm_small, n_nodes=2,
                                      ranks_per_node=rpn),
                          compute_noise=0.3, noise_seed=3)
            base = World(RankMapping(arm_small, n_nodes=2,
                                     ranks_per_node=rpn))
            return world.run(program).elapsed / base.run(program).elapsed

        assert run(8) >= run(1)
