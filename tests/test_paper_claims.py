"""Completeness audit: every quantitative paper claim is covered by a
passing expectation in the harness."""

from repro.harness.paper_claims import CLAIMS, verify_coverage


def test_registry_is_substantial():
    assert len(CLAIMS) >= 45
    sections = {c.section.split("/")[0] for c in CLAIMS}
    # every evaluation section of the paper is represented
    assert {"II", "III-A", "III-B", "III-C", "IV-A", "IV-B",
            "V-A", "V-B", "V-C", "V-D", "V-E", "VI"} <= sections


def test_every_claim_covered():
    coverage = verify_coverage()
    missing_experiment = [c.claim.claim_id for c in coverage
                          if not c.experiment_exists]
    unmatched = [c.claim.claim_id for c in coverage
                 if c.experiment_exists and not c.keyword_matched]
    failing = [c.claim.claim_id for c in coverage
               if c.keyword_matched and not c.expectation_holds]
    assert not missing_experiment, missing_experiment
    assert not unmatched, unmatched
    assert not failing, failing
    assert all(c.covered for c in coverage)


def test_claim_ids_unique():
    ids = [c.claim_id for c in CLAIMS]
    assert len(ids) == len(set(ids))
