"""The pluggable machine-model layer (PR 9).

Three contracts:

* the default :class:`RooflineModel` reproduces the historical inline
  analytic arithmetic **bit-for-bit** (the committed EXPERIMENTS.md
  figures must not move under the refactor);
* the :class:`ECMModel` is priced identically by the scalar and the
  batched backend, and never prices below the roofline (it only adds a
  non-negative hierarchy term to the memory arm);
* preset and pricing registries drive name resolution everywhere —
  aliases, error listings, cache keys, certificates.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.ir import (
    Barrier,
    BatchAnalyticBackend,
    BatchJob,
    CommOp,
    ComputeOp,
    DESBackend,
    Loop,
    MemOp,
    Phase,
    Program,
    SerialOp,
    certified_optimize,
    certify,
)
from repro.ir.analytic import AnalyticBackend
from repro.machine import (
    MACHINES,
    ECMModel,
    PRICING_MODELS,
    RooflineModel,
    cte_arm,
    default_pricing_name,
    get_preset,
    get_pricing_model,
    marenostrum4,
    pricing_model_names,
    resolve_pricing,
    set_default_pricing,
    thunderx2,
)
from repro.simmpi.mapping import RankMapping
from repro.toolchain.kernels import KernelClass
from repro.util.errors import ConfigurationError

from tests.strategies import ir_programs


def _mixed_program(steps: int = 3) -> Program:
    """Fixed-seconds, roofline, memory and serial ops in one program."""
    return Program(
        name="mixed",
        body=(Loop(steps, (Phase("work", (
            ComputeOp(flops=2.0e12, bytes_moved=3.0e11,
                      rate_per_core=1.1e9, imbalance=1.25),
            ComputeOp(flops=5.0e11, rate_per_core=2.0e9),
            ComputeOp(seconds=1.5e-3, imbalance=1.1),
            MemOp(7.0e10),
            SerialOp(2.0e-4),
        )),)),),
        steps=steps,
        ranks_per_node=4,
        threads_per_rank=1,
    )


class TestRegistry:
    def test_names_cover_the_paper_machines_plus_tx2(self):
        names = MACHINES.names()
        for name in ("cte-arm", "marenostrum4", "fugaku", "thunderx2"):
            assert name in names

    @pytest.mark.parametrize("alias, cluster_name", [
        ("tx2", "ThunderX2"),
        ("a64fx", "CTE-Arm"),
        ("mn4", "MareNostrum 4"),
        ("CTE-Arm", "CTE-Arm"),
        ("MareNostrum_4", "MareNostrum 4"),
    ])
    def test_aliases_resolve(self, alias, cluster_name):
        assert get_preset(alias).name == cluster_name

    def test_unknown_preset_lists_registered_names(self):
        with pytest.raises(KeyError, match="registered presets:.*cte-arm"):
            get_preset("summit")

    def test_preset_kwargs_forwarded(self):
        assert get_preset("tx2", n_nodes=3).n_nodes == 3

    def test_registry_metadata(self):
        preset = MACHINES.resolve("thunderx2")
        assert preset.power == "thunderx2"
        assert preset.pricing == "roofline"
        assert "NEON" in preset.isa_notes

    def test_resolve_cluster_uses_registry(self):
        from repro.verify.runner import resolve_cluster

        assert resolve_cluster("tx2").name == "ThunderX2"
        assert resolve_cluster("tx2", 5).n_nodes == 5
        with pytest.raises(ConfigurationError, match="choose from.*thunderx2"):
            resolve_cluster("summit")

    def test_power_model_resolved_through_registry(self):
        from repro.power import power_model_for

        assert power_model_for(thunderx2()).name == "ThunderX2 node"
        assert power_model_for(cte_arm()).name == "A64FX node"


class TestPricingRegistry:
    def test_builtins_registered(self):
        assert pricing_model_names() == ("ecm", "roofline")
        assert isinstance(get_pricing_model("roofline"), RooflineModel)
        assert isinstance(get_pricing_model("ecm"), ECMModel)

    def test_unknown_model_lists_names(self):
        with pytest.raises(ConfigurationError, match="ecm, roofline"):
            get_pricing_model("lognormal")

    def test_default_round_trip(self):
        assert default_pricing_name() == "roofline"
        try:
            set_default_pricing("ecm")
            assert resolve_pricing(None).name == "ecm"
        finally:
            set_default_pricing("roofline")

    def test_set_default_validates(self):
        with pytest.raises(ConfigurationError):
            set_default_pricing("nope")
        assert default_pricing_name() == "roofline"

    def test_registration_invalidates_batch_caches(self):
        from repro.ir import batch
        from repro.machine.models import register_pricing_model

        cluster = cte_arm(8)
        program = _mixed_program(1)
        engine = BatchAnalyticBackend()
        engine.run(program, cluster, 4, check_memory=False)
        assert batch._RESULT_MEMO

        class _Probe(RooflineModel):
            name = "test-probe"

        try:
            register_pricing_model(_Probe())
            assert not batch._RESULT_MEMO
            assert resolve_pricing("test-probe").name == "test-probe"
        finally:
            del PRICING_MODELS["test-probe"]


class TestRooflineDifferential:
    """The model must replicate the historical arithmetic bit-for-bit."""

    @pytest.mark.parametrize("make_cluster, n_nodes",
                             [(cte_arm, 8), (marenostrum4, 8)])
    def test_elapsed_matches_historical_expression(self, make_cluster,
                                                   n_nodes):
        cluster = make_cluster(16)
        program = _mixed_program()
        mapping = RankMapping(cluster, n_nodes=n_nodes, ranks_per_node=4)
        result = AnalyticBackend().run(program, cluster, n_nodes,
                                       mapping=mapping, check_memory=False)
        n_ranks = mapping.n_ranks
        agg_bw = n_ranks * mapping.rank_memory_bandwidth(0)
        # the pre-refactor inline loop, replicated op by op, in order
        expected_phase = 0.0
        for op in program.body[0].body[0].ops:
            if isinstance(op, ComputeOp):
                if op.seconds is not None:
                    expected_phase += op.seconds * op.imbalance
                    continue
                agg = n_ranks * mapping.rank_compute_rate(0, op.rate_per_core)
                t_flops = op.flops / agg
                t_bytes = op.bytes_moved / agg_bw if op.bytes_moved else 0.0
                expected_phase += max(t_flops, t_bytes) * op.imbalance
            elif isinstance(op, MemOp):
                expected_phase += op.bytes_moved / agg_bw
            elif isinstance(op, SerialOp):
                expected_phase += op.seconds
        expected = 0.0
        for _ in range(program.steps):
            expected += expected_phase
        assert result.elapsed == expected  # bit-exact, not approx

    def test_missing_rate_message_unchanged(self):
        from repro.toolchain.profiles import GNU_8_3_1_SVE

        cluster = cte_arm(8)
        program = Program(
            name="bad", body=(Phase("p", (ComputeOp(flops=1.0e9),)),),
            ranks_per_node=4, kernels=(KernelClass.STREAM,))
        binary = GNU_8_3_1_SVE.build("bad", (KernelClass.STREAM,))
        with pytest.raises(
                ConfigurationError,
                match="compute op in phase 'p' needs a kernel class or an "
                "explicit rate_per_core"):
            AnalyticBackend().run(program, cluster, 2, binary=binary,
                                  check_memory=False)


class TestECM:
    def test_never_below_roofline_fixed(self):
        cluster = cte_arm(16)
        program = _mixed_program()
        roof = AnalyticBackend().run(program, cluster, 8,
                                     check_memory=False, pricing="roofline")
        ecm = AnalyticBackend().run(program, cluster, 8,
                                    check_memory=False, pricing="ecm")
        assert ecm.elapsed >= roof.elapsed

    @settings(max_examples=40, deadline=None)
    @given(program=ir_programs(rich=True))
    def test_never_below_roofline_property(self, program):
        cluster = cte_arm(16)
        engine = AnalyticBackend()
        roof = engine.run(program, cluster, 4, check_memory=False,
                          pricing="roofline")
        ecm = engine.run(program, cluster, 4, check_memory=False,
                         pricing="ecm")
        assert ecm.elapsed >= roof.elapsed - 1e-15 * abs(roof.elapsed)

    @settings(max_examples=25, deadline=None)
    @given(program=ir_programs(rich=True))
    def test_batch_matches_scalar_bit_exact(self, program):
        cluster = cte_arm(16)
        scalar = AnalyticBackend().run(program, cluster, 4,
                                       check_memory=False, pricing="ecm")
        batched = BatchAnalyticBackend().run(program, cluster, 4,
                                             check_memory=False,
                                             pricing="ecm")
        assert batched.elapsed == scalar.elapsed
        assert batched.phase_seconds == scalar.phase_seconds

    def test_bench_kernels_separate_under_ecm(self):
        """The satellite benches exist to surface the hierarchy term."""
        from repro.bench.spmv import pricing_points

        roof, ecm = pricing_points(marenostrum4(192), 8)
        assert ecm.seconds > roof.seconds * 1.15


class TestBatchCacheIdentity:
    def test_model_identity_in_job_digest(self):
        cluster = cte_arm(16)
        program = _mixed_program(1)
        engine = BatchAnalyticBackend()
        digests = set()
        for name in ("roofline", "ecm"):
            job = BatchJob(program, cluster, 4, check_memory=False,
                           pricing=name)
            digests.add(engine._prepare(job).digest)
        assert len(digests) == 2

    def test_cold_equals_warm_under_ecm(self):
        from repro.ir.batch import clear_caches

        cluster = cte_arm(16)
        program = _mixed_program()
        engine = BatchAnalyticBackend()
        clear_caches()
        cold = engine.run(program, cluster, 8, check_memory=False,
                          pricing="ecm")
        warm = engine.run(program, cluster, 8, check_memory=False,
                          pricing="ecm")
        assert warm.elapsed == cold.elapsed
        assert warm.phase_seconds == cold.phase_seconds


class TestDESIntegration:
    def _program(self) -> Program:
        return Program(
            name="mem-bound",
            body=(Phase("p", (
                ComputeOp(flops=1.0e10, bytes_moved=4.0e11,
                          rate_per_core=2.0e9),
                CommOp("allreduce", 8),
                Barrier(),
            )),),
            ranks_per_node=2,
        )

    def test_ecm_at_least_roofline(self):
        cluster = cte_arm(8)
        engine = DESBackend()
        roof = engine.run(self._program(), cluster, 4, trace=False,
                          check_memory=False, pricing="roofline")
        ecm = engine.run(self._program(), cluster, 4, trace=False,
                         check_memory=False, pricing="ecm")
        assert ecm.elapsed >= roof.elapsed

    def test_default_pricing_unchanged_path(self):
        cluster = cte_arm(8)
        engine = DESBackend()
        default = engine.run(self._program(), cluster, 4, trace=False,
                             check_memory=False)
        roof = engine.run(self._program(), cluster, 4, trace=False,
                          check_memory=False, pricing="roofline")
        assert default.elapsed == roof.elapsed

    def test_sharded_rejects_non_roofline(self):
        cluster = cte_arm(8)
        with pytest.raises(ConfigurationError,
                           match="sharded DES supports only the default"):
            DESBackend().run(self._program(), cluster, 4, trace=False,
                             check_memory=False, shards=2, pricing="ecm")


class TestPassSoundness:
    def test_certificates_keyed_by_model(self):
        program = _mixed_program()
        opt_roof, cert_roof = certified_optimize(program)
        opt_ecm, cert_ecm = certified_optimize(program, pricing="ecm")
        assert cert_roof.ok and cert_ecm.ok
        assert opt_roof == opt_ecm
        assert cert_roof.digest != cert_ecm.digest

    def test_certify_ok_under_both_models(self):
        from repro.ir import optimize_program

        program = _mixed_program()
        optimized = optimize_program(program)
        for name in pricing_model_names():
            assert certify(program, optimized, pricing=name).ok


class TestHarnessCacheKey:
    def test_pricing_in_cache_key(self):
        from repro.harness.parallel import cache_key

        assert (cache_key("fig6_linpack", "analytic", "roofline")
                != cache_key("fig6_linpack", "analytic", "ecm"))

    def test_sweep_memo_keyed_by_default_pricing(self):
        from repro.apps import NemoModel

        app = NemoModel()
        cluster = cte_arm(16)
        base = app.sweep_timings(cluster, [8])
        try:
            set_default_pricing("ecm")
            ecm = app.sweep_timings(cluster, [8])
        finally:
            set_default_pricing("roofline")
        again = app.sweep_timings(cluster, [8])
        assert ecm[8].total >= base[8].total
        assert again[8].total == base[8].total
