"""Blocked GEMM kernel and the host self-validation battery."""

import numpy as np
import pytest

from repro.bench.host_validation import (
    comparison_table,
    measure_host,
    sanity_check,
)
from repro.kernels.gemm import (
    blocked_gemm,
    choose_block,
    gemm_flops,
    gemm_traffic_blocked,
)
from repro.machine.cache import CacheLevel
from repro.util.errors import ConfigurationError
from repro.util.units import KIB, MIB


class TestBlockedGEMM:
    @pytest.mark.parametrize("m,k,n,block", [
        (64, 64, 64, 16), (100, 50, 70, 32), (33, 17, 9, 8), (16, 16, 16, 64),
    ])
    def test_matches_numpy(self, m, k, n, block):
        rng = np.random.default_rng(m * 1000 + n)
        a = rng.normal(size=(m, k))
        b = rng.normal(size=(k, n))
        assert np.allclose(blocked_gemm(a, b, block=block), a @ b)

    def test_accumulates_into_out(self):
        rng = np.random.default_rng(0)
        a, b = rng.normal(size=(20, 20)), rng.normal(size=(20, 20))
        c = np.ones((20, 20))
        blocked_gemm(a, b, block=8, out=c)
        assert np.allclose(c, 1.0 + a @ b)

    def test_shape_validation(self):
        with pytest.raises(ConfigurationError):
            blocked_gemm(np.ones((3, 4)), np.ones((5, 3)))
        with pytest.raises(ConfigurationError):
            blocked_gemm(np.ones((3, 4)), np.ones((4, 3)), block=0)
        with pytest.raises(ConfigurationError):
            blocked_gemm(np.ones((3, 4)), np.ones((4, 3)),
                         out=np.zeros((2, 2)))

    def test_choose_block_fits_cache(self):
        l1 = CacheLevel("L1", 64 * KIB, shared_by=1, count=1)
        b = choose_block(l1)
        assert 3 * b * b * 8 <= 64 * KIB
        assert b % 8 == 0
        l2 = CacheLevel("L2", 8 * MIB, shared_by=12, count=1)
        assert choose_block(l2) > b

    def test_traffic_model_blocking_wins(self):
        naive_ish = gemm_traffic_blocked(512, 512, 512, block=1)
        blocked = gemm_traffic_blocked(512, 512, 512, block=64)
        assert blocked < naive_ish / 10
        assert gemm_flops(512, 512, 512) == 2 * 512**3


class TestHostValidation:
    @pytest.fixture(scope="class")
    def profile(self):
        return measure_host(stream_elements=400_000, gemm_n=192)

    def test_host_is_sane(self, profile):
        assert sanity_check(profile) == []

    def test_measurements_positive(self, profile):
        assert profile.fma_gflops > 0.05
        assert profile.triad_gbs > 0.5
        assert profile.gemm_gflops > 0.5

    def test_comparison_table_renders(self, profile):
        text = comparison_table(profile).render()
        assert "this host" in text and "A64FX" in text

    def test_sanity_flags_broken_profile(self):
        from repro.bench.host_validation import HostProfile

        broken = HostProfile(
            fma_gflops=0.01,
            stream_gbs={"copy": 0.01, "scale": 1, "add": 1, "triad": 0.1},
            gemm_gflops=0.00001,
        )
        assert len(sanity_check(broken)) >= 2
