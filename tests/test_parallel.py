"""The parallel sweep executor and its on-disk result cache."""

from __future__ import annotations

import json

import pytest

import repro.harness  # noqa: F401  (populate the experiment registry)
from repro.harness.cli import main
from repro.harness.parallel import (
    cache_key,
    run_experiments,
    source_fingerprint,
)
from repro.util.errors import ConfigurationError

#: cheap experiments spanning table, figure, and extension shapes.
_IDS = ["table1_hardware", "fig1_fpu", "fig6_linpack", "ext_faults"]


class TestDeterminism:
    def test_jobs_1_and_4_byte_identical(self):
        serial = run_experiments(_IDS, jobs=1)
        fanout = run_experiments(_IDS, jobs=4)
        assert json.dumps(serial) == json.dumps(fanout)

    def test_input_order_preserved(self):
        payloads = run_experiments(list(reversed(_IDS)), jobs=4)
        assert [p["experiment"] for p in payloads] == list(reversed(_IDS))

    def test_duplicate_ids_run_once(self):
        payloads = run_experiments([_IDS[0], _IDS[0]], jobs=2)
        assert len(payloads) == 2
        assert payloads[0] == payloads[1]

    def test_jobs_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            run_experiments(_IDS, jobs=0)


class TestResultCache:
    def test_cache_round_trip_identical(self, tmp_path):
        fresh = run_experiments(_IDS, jobs=1, cache_dir=tmp_path)
        assert len(list(tmp_path.glob("*.json"))) == len(_IDS)
        cached = run_experiments(_IDS, jobs=1, cache_dir=tmp_path)
        assert json.dumps(cached) == json.dumps(fresh)

    def test_key_depends_on_source_fingerprint(self, monkeypatch):
        key = cache_key(_IDS[0])
        monkeypatch.setattr(
            "repro.harness.parallel._fingerprint", "0" * 64
        )
        assert cache_key(_IDS[0]) != key

    def test_fingerprint_is_stable(self):
        assert source_fingerprint() == source_fingerprint()

    def test_stale_entries_not_served(self, tmp_path, monkeypatch):
        run_experiments([_IDS[0]], cache_dir=tmp_path)
        # A source change rolls the fingerprint: the old entry is dead.
        monkeypatch.setattr(
            "repro.harness.parallel._fingerprint", "f" * 64
        )
        run_experiments([_IDS[0]], cache_dir=tmp_path)
        assert len(list(tmp_path.glob("*.json"))) == 2


class TestPoolThreshold:
    def test_small_suite_never_spawns_a_pool(self, monkeypatch):
        def boom(*args, **kwargs):  # pragma: no cover - must not be hit
            raise AssertionError("pool spawned below the cost threshold")

        monkeypatch.setattr(
            "repro.harness.parallel.ProcessPoolExecutor", boom
        )
        monkeypatch.setenv("REPRO_POOL_MIN_SECONDS", "1e9")
        payloads = run_experiments(_IDS, jobs=4)
        assert [p["experiment"] for p in payloads] == _IDS

    def test_forced_pool_matches_serial(self, monkeypatch):
        serial = run_experiments(_IDS, jobs=1)
        monkeypatch.setenv("REPRO_POOL_MIN_SECONDS", "0")
        fanout = run_experiments(_IDS, jobs=2)
        assert json.dumps(serial) == json.dumps(fanout)

    def test_bad_threshold_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL_MIN_SECONDS", "fast")
        with pytest.raises(ConfigurationError):
            run_experiments(_IDS, jobs=2)

    def test_cache_key_depends_on_pass_version(self, monkeypatch):
        key = cache_key(_IDS[0])
        monkeypatch.setattr("repro.ir.optimize.PASS_VERSION", 10**9)
        assert cache_key(_IDS[0]) != key


class TestCli:
    def test_run_jobs_json(self, capsys):
        assert main(["run", "fig1_fpu", "--json", "--jobs", "2"]) == 0
        out = json.loads(capsys.readouterr().out)
        assert out[0]["experiment"] == "fig1_fpu"
        assert all(
            isinstance(e["holds"], bool) for e in out[0]["expectations"]
        )

    def test_run_cached_output_identical(self, tmp_path, capsys):
        main(["run", "fig1_fpu", "--cache-dir", str(tmp_path)])
        first = capsys.readouterr().out
        main(["run", "fig1_fpu", "--cache-dir", str(tmp_path)])
        assert capsys.readouterr().out == first

    def test_unknown_experiment_rejected(self, capsys):
        assert main(["run", "no_such_experiment"]) == 2


class _Echo:
    """Trivial persistent-pool handler: returns what it is sent."""

    def __init__(self, tag):
        self.tag = tag

    def handle(self, msg):
        if msg == "boom":
            raise ValueError("exploding handler")
        return (self.tag, msg)


def _make_echo(init):
    return _Echo(init)


class TestPersistentPool:
    def test_call_all_routes_by_worker(self):
        from repro.harness.procpool import PersistentPool

        with PersistentPool(_make_echo, ["a", "b"]) as pool:
            assert pool.call_all([1, 2]) == [("a", 1), ("b", 2)]
            assert pool.call_all([3, 4]) == [("a", 3), ("b", 4)]
            # Worker-side wall time is recorded per completed call.
            assert len(pool.call_walls[0]) == 2
            assert all(w >= 0.0 for w in pool.call_walls[0])

    def test_worker_exception_reraised_in_parent(self):
        from repro.harness.procpool import PersistentPool

        pool = PersistentPool(_make_echo, ["a", "b"])
        with pytest.raises(ValueError, match="exploding"):
            pool.call_all(["boom", 1])

    def test_message_count_must_match_workers(self):
        from repro.harness.procpool import PersistentPool

        with PersistentPool(_make_echo, ["a"]) as pool:
            with pytest.raises(ValueError):
                pool.call_all([1, 2])


class TestRunStats:
    def test_per_task_wall_times_surface(self, tmp_path):
        from repro.harness.parallel import last_run_stats

        run_experiments(_IDS[:2], jobs=1, cache_dir=tmp_path)
        stats = last_run_stats()
        assert [s[0] for s in stats] == _IDS[:2]
        assert stats[0][2] == "probe"
        assert stats[1][2] == "serial"
        assert all(s[1] >= 0.0 for s in stats)
        # Second sweep is served from cache; the stats say so.
        run_experiments(_IDS[:2], jobs=1, cache_dir=tmp_path)
        assert [s[2] for s in last_run_stats()] == ["cache", "cache"]

    def test_cache_key_depends_on_backend_options(self):
        from repro.ir import set_backend_options

        key = cache_key(_IDS[0], "des")
        set_backend_options(des_shards=8)
        try:
            assert cache_key(_IDS[0], "des") != key
        finally:
            set_backend_options(des_shards=None)
        assert cache_key(_IDS[0], "des") == key
