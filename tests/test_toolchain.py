"""Toolchain models: profiles, build failures, sustained rates, flag tables."""

import pytest

from repro.machine.isa import DType
from repro.toolchain import (
    APP_BUILDS,
    COMPILERS,
    FUJITSU_1_2_26B,
    GNU_8_3_1_SVE,
    GNU_8_4_2,
    GNU_11_0_0,
    INTEL_2018_4,
    KernelClass,
    default_compiler_for,
    get_compiler,
    table2,
    table3,
)
from repro.toolchain.compiler import SCALAR_ONLY, VectorizationResult
from repro.util.errors import (
    CompileError,
    CompileHang,
    ConfigurationError,
    RuntimeFailure,
)

K = KernelClass


class TestProfiles:
    def test_registry_complete(self):
        assert "Fujitsu/1.2.26b" in COMPILERS
        assert "GNU/8.3.1-sve" in COMPILERS
        assert get_compiler("Intel/2018.4") is INTEL_2018_4
        with pytest.raises(KeyError):
            get_compiler("Cray/12")

    def test_unknown_kernel_is_scalar(self):
        assert GNU_8_3_1_SVE.vectorization(K.IO) is SCALAR_ONLY

    def test_gnu_sve_worse_than_intel_on_irregular(self):
        for k in (K.FEM_ASSEMBLY, K.SPMV, K.SCALAR_PHYSICS):
            g = GNU_8_3_1_SVE.vectorization(k)
            i = INTEL_2018_4.vectorization(k)
            assert g.vector_fraction < i.vector_fraction

    def test_everyone_vectorizes_stream(self):
        for profile in COMPILERS.values():
            assert profile.vectorization(K.STREAM).vector_fraction == 1.0

    def test_vectorization_result_validation(self):
        with pytest.raises(ConfigurationError):
            VectorizationResult(1.5, 0.5)
        with pytest.raises(ConfigurationError):
            VectorizationResult(0.5, 0.0)


class TestDeploymentFailures:
    """The Section V deployment story, as exceptions."""

    def test_fujitsu_hangs_on_alya(self):
        with pytest.raises(CompileHang):
            FUJITSU_1_2_26B.build("Alya", (K.FEM_ASSEMBLY,))

    def test_fujitsu_errors_on_nemo(self):
        with pytest.raises(CompileError):
            FUJITSU_1_2_26B.build("NEMO", (K.STENCIL,))

    def test_fujitsu_cmake_fails_on_gromacs(self):
        with pytest.raises(CompileError):
            FUJITSU_1_2_26B.build("Gromacs", (K.MD_NONBONDED,))

    def test_fujitsu_openifs_builds_then_aborts(self):
        binary = FUJITSU_1_2_26B.build("OpenIFS", (K.SPECTRAL,))
        with pytest.raises(RuntimeFailure):
            binary.check_runnable()

    def test_gnu831_too_old_for_gromacs(self):
        with pytest.raises(CompileError):
            GNU_8_3_1_SVE.build("Gromacs", (K.MD_NONBONDED,))

    def test_gnu11_builds_gromacs(self):
        binary = GNU_11_0_0.build("Gromacs", (K.MD_NONBONDED,))
        binary.check_runnable()

    def test_gnu_builds_everything_else(self):
        for app, kernels in [("Alya", (K.FEM_ASSEMBLY,)),
                             ("NEMO", (K.STENCIL,)),
                             ("OpenIFS", (K.SPECTRAL,)),
                             ("WRF", (K.STENCIL,))]:
            GNU_8_3_1_SVE.build(app, kernels).check_runnable()


class TestSustainedRates:
    def test_assembly_gap_near_paper(self, arm, mn4):
        """The Alya Assembly compute-rate gap should be ~4.9x (Fig. 9)."""
        b_arm = GNU_8_3_1_SVE.build("Alya", (K.FEM_ASSEMBLY,))
        b_mn4 = GNU_8_4_2.build("Alya", (K.FEM_ASSEMBLY,))
        ra = b_arm.sustained_flops(arm.node.core_model, K.FEM_ASSEMBLY)
        rm = b_mn4.sustained_flops(mn4.node.core_model, K.FEM_ASSEMBLY)
        assert 4.4 < rm / ra < 5.5

    def test_irregular_penalty_applies_only_on_a64fx(self, arm, mn4):
        b = GNU_8_3_1_SVE.build("Alya", (K.FEM_ASSEMBLY, K.KRYLOV))
        core = arm.node.core_model
        # KRYLOV (regular) must not carry the irregular penalty.
        krylov = b.sustained_flops(core, K.KRYLOV)
        assert krylov > b.sustained_flops(core, K.FEM_ASSEMBLY)
        assert mn4.node.core_model.irregular_access_efficiency == 1.0

    def test_rate_positive_for_all_kernels(self, arm):
        b = GNU_8_3_1_SVE.build("NEMO", tuple(K))
        for k in K:
            assert b.sustained_flops(arm.node.core_model, k) > 0

    def test_unknown_kernel_for_binary_rejected(self, arm):
        b = GNU_8_3_1_SVE.build("NEMO", (K.STENCIL,))
        with pytest.raises(ConfigurationError):
            b.sustained_flops(arm.node.core_model, K.SPECTRAL)

    def test_dtype_single_faster_than_double(self, arm):
        b = INTEL_2018_4.build("x", (K.STENCIL,))
        core = arm.node.core_model
        assert b.sustained_flops(core, K.STENCIL, DType.SINGLE) > \
            b.sustained_flops(core, K.STENCIL, DType.DOUBLE)


class TestDefaultsAndTables:
    def test_table3_defaults(self):
        assert default_compiler_for("alya", "cte-arm") is GNU_8_3_1_SVE
        assert default_compiler_for("alya", "MareNostrum 4") is GNU_8_4_2
        assert default_compiler_for("gromacs", "cte-arm") is GNU_11_0_0
        assert default_compiler_for("gromacs", "mn4") is INTEL_2018_4
        with pytest.raises(KeyError):
            default_compiler_for("hpl", "cte-arm")

    def test_app_builds_cover_all_ten(self):
        assert len(APP_BUILDS) == 10
        apps = {a for a, _ in APP_BUILDS}
        assert apps == {"alya", "nemo", "gromacs", "openifs", "wrf"}

    def test_table2_flags_verbatim(self):
        text = table2().render()
        assert "-Kzfill=100" in text
        assert "-Kprefetch_sequential=soft" in text
        assert "-qopenmp-link=static" in text

    def test_table3_flags_verbatim(self):
        text = table3().render()
        assert "-msve-vector-bits=512" in text
        assert "-xCORE-AVX512" in text
        assert "Fujitsu/1.1.18" in text  # Alya's MPI flavour on CTE-Arm
