"""Capacity-planning analysis."""

import pytest

from repro.analysis.planning import (
    equivalence_table,
    nodes_for_target,
    plan_for_target,
)
from repro.apps import AlyaModel, NemoModel, WRFModel
from repro.util.errors import ConfigurationError


class TestNodesForTarget:
    def test_reproduces_paper_equivalence(self, arm, mn4):
        """Paper: ~44 CTE-Arm nodes match 12 MareNostrum 4 nodes on Alya."""
        alya = AlyaModel()
        target = alya.time_step(mn4, 12).total
        n = nodes_for_target(alya, arm, target)
        assert n is not None and abs(n - 44) <= 6

    def test_matches_linear_scan(self, arm, mn4):
        """Binary search equals the reference linear search."""
        app = WRFModel()
        target = app.time_step(mn4, 8).total
        n_binary = nodes_for_target(app, arm, target, max_nodes=64)
        n_linear = app.nodes_to_match(arm, mn4, 8, max_nodes=64)
        assert n_binary == n_linear

    def test_unreachable_target(self, arm):
        app = WRFModel()
        assert nodes_for_target(app, arm, 1e-9) is None

    def test_loose_target_needs_min_nodes(self, arm):
        app = NemoModel()
        assert nodes_for_target(app, arm, 1e9) == app.min_nodes(arm)

    def test_invalid_target(self, arm):
        with pytest.raises(ConfigurationError):
            nodes_for_target(WRFModel(), arm, 0.0)


class TestPlans:
    def test_plan_fields_consistent(self, arm):
        app = WRFModel()
        plan = plan_for_target(app, arm, 1.0)
        assert plan is not None
        assert plan.seconds_per_step <= 1.0
        assert plan.node_hours_per_run == pytest.approx(
            plan.n_nodes * plan.seconds_per_step * app.steps_per_run / 3600.0)
        assert plan.energy_kwh_per_run > 0

    def test_equivalence_table_shape(self, arm, mn4):
        t = equivalence_table(AlyaModel(), arm, mn4, [8, 12])
        assert len(t.rows) == 2
        # MN4@8 is feasible for Alya there (4-node min), Arm must match.
        assert t.rows[1][1] not in ("NP", "unreachable")

    def test_energy_ratio_below_node_ratio(self, arm, mn4):
        """The extension finding in operator terms: matching MN4 costs 3.5x
        the nodes but much less than 3.5x the energy."""
        t = equivalence_table(AlyaModel(), arm, mn4, [12])
        _, _, node_ratio, energy_ratio = t.rows[0]
        assert energy_ratio < 0.6 * node_ratio
