"""Cross-validation of the analytic collective fast path.

``World(fast_collectives=True)`` must agree with the fully simulated
message exchange: identical return values (including floating-point fold
order) and virtual elapsed times within the documented 5% tolerance —
in practice the recurrences reproduce the DES schedule exactly for
bulk-synchronous arrivals.
"""

from __future__ import annotations

import pytest

from repro.machine import cte_arm
from repro.simmpi import RankMapping, ReduceOp, VirtualPayload, World

TOL = 0.05

_CLUSTER = cte_arm(16)


def _worlds(n_ranks: int, ranks_per_node: int = 4):
    """A (simulated, fast) pair of fresh worlds over the same mapping."""
    rpn = min(ranks_per_node, n_ranks)
    assert n_ranks % rpn == 0
    mapping = RankMapping(_CLUSTER, n_nodes=n_ranks // rpn, ranks_per_node=rpn)
    return World(mapping), World(mapping, fast_collectives=True)


def _compare(program, n_ranks, *, ranks_per_node=4, **kwargs):
    simulated, fast = _worlds(n_ranks, ranks_per_node)
    ref = simulated.run(program, **kwargs)
    got = fast.run(program, **kwargs)
    assert got.rank_results == ref.rank_results
    assert got.elapsed == pytest.approx(ref.elapsed, rel=TOL)
    return ref, got


class TestAgreementPerCollective:
    """Every fast-pathed collective, several rank counts and sizes."""

    @pytest.mark.parametrize("n_ranks", [2, 4, 8, 16])
    @pytest.mark.parametrize("size", [64, 8192, 262144])
    def test_allreduce(self, n_ranks, size):
        def program(comm):
            value = yield from comm.allreduce(
                float(comm.rank + 1), op=ReduceOp.SUM, size=size
            )
            return value

        _compare(program, n_ranks)

    @pytest.mark.parametrize("n_ranks", [4, 8, 16])
    @pytest.mark.parametrize("size", [64, 262144])
    def test_bcast(self, n_ranks, size):
        def program(comm):
            payload = list(range(8)) if comm.rank == 1 else None
            value = yield from comm.bcast(payload, root=1, size=size)
            return value

        _compare(program, n_ranks)

    @pytest.mark.parametrize("n_ranks", [4, 8, 16])
    @pytest.mark.parametrize("size", [64, 262144])
    def test_reduce(self, n_ranks, size):
        def program(comm):
            value = yield from comm.reduce(
                float(comm.rank * 2 + 1), op=ReduceOp.MAX, root=2, size=size
            )
            return value

        _compare(program, n_ranks)

    @pytest.mark.parametrize("n_ranks", [4, 8, 16])
    @pytest.mark.parametrize("size", [64, 262144])
    def test_allgather(self, n_ranks, size):
        def program(comm):
            blocks = yield from comm.allgather(comm.rank * 10, size=size)
            return blocks

        _compare(program, n_ranks)

    @pytest.mark.parametrize("n_ranks", [4, 8])
    @pytest.mark.parametrize("size", [64, 262144])
    def test_alltoall(self, n_ranks, size):
        def program(comm):
            payloads = [comm.rank * 100 + dst for dst in range(comm.size)]
            received = yield from comm.alltoall(payloads, size=size)
            return received

        _compare(program, n_ranks)

    @pytest.mark.parametrize("n_ranks", [2, 8, 16])
    def test_barrier(self, n_ranks):
        def program(comm):
            yield from comm.barrier()
            return comm.rank

        _compare(program, n_ranks)

    @pytest.mark.parametrize("n_ranks,rpn", [(3, 3), (6, 3), (12, 4)])
    def test_non_power_of_two(self, n_ranks, rpn):
        def program(comm):
            value = yield from comm.allreduce(
                float(comm.rank), op=ReduceOp.SUM, size=4096
            )
            data = yield from comm.bcast(
                value if comm.rank == 0 else None, size=4096
            )
            return data

        _compare(program, n_ranks, ranks_per_node=rpn)


class TestAgreementUnderLoad:
    def test_skewed_arrivals(self):
        """Ranks entering the collective at different times still agree."""

        def program(comm):
            yield comm.rank * 3e-6
            value = yield from comm.allreduce(1.0, op=ReduceOp.SUM, size=8192)
            return value

        _compare(program, 8)

    def test_repeated_mixed_collectives(self):
        def program(comm):
            total = 0.0
            for _ in range(5):
                yield 1e-6
                total = yield from comm.allreduce(
                    total + comm.rank, op=ReduceOp.SUM, size=1024
                )
                yield from comm.barrier()
            blocks = yield from comm.allgather(total, size=64)
            return blocks

        _compare(program, 8)

    def test_virtual_payload(self):
        def program(comm):
            value = yield from comm.allreduce(VirtualPayload(65536))
            return value.nbytes

        _compare(program, 8)

    def test_split_communicators(self):
        """Sub-communicator collectives go through the fast path too."""

        def program(comm):
            sub = yield from comm.split(color=comm.rank % 2, key=comm.rank)
            value = yield from sub.allreduce(
                float(comm.rank), op=ReduceOp.SUM, size=64
            )
            return value

        _compare(program, 8)


class TestGating:
    def test_verify_forces_simulated_path(self):
        """run(verify=True) must observe every constituent message."""

        def program(comm):
            value = yield from comm.allreduce(1.0, op=ReduceOp.SUM, size=64)
            return value

        _, fast = _worlds(4)
        result = fast.run(program, verify=True)
        assert result.diagnostics is not None
        # The recorder saw per-message traffic, which the analytic path
        # never generates: the world took the simulated branch.
        assert not fast._use_fastcoll()
        assert fast.recorder is not None
        assert len(fast.recorder.events) > 0

    def test_nic_contention_forces_simulated_path(self):
        mapping = RankMapping(_CLUSTER, n_nodes=2, ranks_per_node=2)
        world = World(mapping, fast_collectives=True, nic_contention=True)
        assert not world._use_fastcoll()

    def test_off_by_default(self):
        mapping = RankMapping(_CLUSTER, n_nodes=2, ranks_per_node=2)
        assert not World(mapping)._use_fastcoll()
        assert World(mapping, fast_collectives=True)._use_fastcoll()

    def test_fast_path_skips_per_message_trace(self):
        """The fast path records the collective once per rank, not every
        constituent send/recv — aggregate phase totals stay queryable."""

        def program(comm):
            comm.set_phase("solver")
            value = yield from comm.allreduce(1.0, op=ReduceOp.SUM, size=64)
            return value

        _, fast = _worlds(4)
        result = fast.run(program)
        per = result.trace.per_actor("solver")
        assert len(per) == 4
        assert result.phase_time("solver") > 0.0
