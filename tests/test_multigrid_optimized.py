"""The multicolor (optimized) HPCG smoother — Fig. 7's vanilla/optimized
axis realized in actual code."""

import time

import numpy as np

from repro.kernels.multigrid import (
    color_grid,
    hpcg_matrix,
    hpcg_solve,
    symgs,
    symgs_colored,
)


class TestColoring:
    def test_eight_colors(self):
        colors = color_grid(4, 4, 4)
        assert set(colors) == set(range(8))

    def test_no_neighbour_shares_a_color(self):
        nx = ny = nz = 4
        colors = color_grid(nx, ny, nz)
        a = hpcg_matrix(nx, ny, nz)
        indptr, indices = a.indptr, a.indices
        for row in range(a.shape[0]):
            for col in indices[indptr[row]: indptr[row + 1]]:
                if col != row:
                    assert colors[row] != colors[col]

    def test_color_balance(self):
        colors = color_grid(8, 8, 8)
        counts = np.bincount(colors)
        assert counts.min() == counts.max() == 64


class TestColoredSmoother:
    def test_reduces_residual(self):
        a = hpcg_matrix(4, 4, 4)
        colors = color_grid(4, 4, 4)
        b = a @ np.ones(64)
        x = np.zeros(64)
        r0 = np.linalg.norm(b - a @ x)
        symgs_colored(a, x, b, colors)
        assert np.linalg.norm(b - a @ x) < 0.5 * r0

    def test_smoothing_quality_comparable_to_lexicographic(self):
        a = hpcg_matrix(6, 6, 6)
        colors = color_grid(6, 6, 6)
        b = a @ np.ones(216)
        x_lex = symgs(a, np.zeros(216), b)
        x_col = symgs_colored(a, np.zeros(216), b, colors)
        r_lex = np.linalg.norm(b - a @ x_lex)
        r_col = np.linalg.norm(b - a @ x_col)
        assert r_col < 2.5 * r_lex  # different ordering, same character

    def test_exact_on_diagonal_system(self):
        import scipy.sparse as sp

        a = sp.diags(np.full(8, 26.0)).tocsr()
        colors = np.zeros(8, dtype=int)
        x = symgs_colored(a, np.zeros(8), np.full(8, 26.0), colors)
        assert np.allclose(x, 1.0)


class TestOptimizedHPCG:
    def test_same_convergence_class(self):
        vanilla, _ = hpcg_solve(8, 8, 8, levels=2, tol=1e-6, max_iter=40)
        optimized, _ = hpcg_solve(8, 8, 8, levels=2, tol=1e-6, max_iter=40,
                                  optimized=True)
        assert vanilla.converged and optimized.converged
        assert abs(vanilla.iterations - optimized.iterations) <= 3

    def test_optimized_faster_on_host(self):
        """The whole point of the vendor restructuring: the vectorizable
        smoother runs much faster for identical numerics."""
        t0 = time.perf_counter()
        hpcg_solve(12, 12, 12, levels=2, tol=1e-6, max_iter=25)
        t_vanilla = time.perf_counter() - t0
        t0 = time.perf_counter()
        hpcg_solve(12, 12, 12, levels=2, tol=1e-6, max_iter=25, optimized=True)
        t_optimized = time.perf_counter() - t0
        assert t_optimized < 0.6 * t_vanilla

    def test_solutions_agree(self):
        v, _ = hpcg_solve(8, 8, 8, levels=2, tol=1e-8, max_iter=60)
        o, _ = hpcg_solve(8, 8, 8, levels=2, tol=1e-8, max_iter=60,
                          optimized=True)
        assert np.abs(v.x - o.x).max() < 1e-6
