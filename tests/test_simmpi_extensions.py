"""Nonblocking requests, communicator splitting, reduce-scatter, scans."""

import numpy as np
import pytest

from repro.simmpi import RankMapping, ReduceOp, World
from repro.util.errors import ConfigurationError


class TestNonblocking:
    def test_isend_irecv_roundtrip(self, small_world):
        def program(comm):
            partner = comm.rank ^ 1
            send = comm.isend(partner, np.array([float(comm.rank)]))
            recv = comm.irecv(partner)
            data = yield from recv.wait()
            yield from send.wait()
            return float(data[0])

        res = small_world.run(program)
        assert res.rank_results == [1.0, 0.0, 3.0, 2.0, 5.0, 4.0, 7.0, 6.0]

    def test_waitall_returns_recv_payloads_in_order(self, small_world):
        def program(comm):
            partner = comm.rank ^ 1
            reqs = [
                comm.isend(partner, "a", tag=1),
                comm.irecv(partner, tag=2),
                comm.isend(partner, "b", tag=2),
                comm.irecv(partner, tag=1),
            ]
            values = yield from comm.waitall(reqs)
            return values

        res = small_world.run(program)
        for values in res.rank_results:
            assert values == [None, "b", None, "a"]

    def test_request_complete_flag(self, small_world):
        def program(comm):
            partner = comm.rank ^ 1
            recv = comm.irecv(partner)
            before = recv.complete
            yield from comm.send(partner, "x")
            yield from recv.wait()
            return (before, recv.complete)

        res = small_world.run(program)
        assert all(v == (False, True) for v in res.rank_results)

    def test_overlap_shortens_time(self, arm_small):
        """Two concurrent eager exchanges overlap; two sequential ones
        cannot finish sooner."""

        def overlapped(comm):
            partner = comm.rank ^ 1
            reqs = [comm.isend(partner, None, tag=t, size=512) for t in (1, 2)]
            reqs += [comm.irecv(partner, tag=t) for t in (1, 2)]
            yield from comm.waitall(reqs)

        def sequential(comm):
            partner = comm.rank ^ 1
            for t in (1, 2):
                yield from comm.sendrecv(partner, None, tag=t, size=512)

        w1 = World(RankMapping(arm_small, n_nodes=2, ranks_per_node=1))
        w2 = World(RankMapping(arm_small, n_nodes=2, ranks_per_node=1))
        assert w1.run(overlapped).elapsed <= w2.run(sequential).elapsed


class TestWaitany:
    def test_returns_first_completion(self, small_world):
        def program(comm):
            partner = comm.rank ^ 1
            reqs = [comm.irecv(partner, tag=1), comm.irecv(partner, tag=2)]
            yield from comm.send(partner, "second", tag=2)
            yield from comm.compute(1e-3)
            yield from comm.send(partner, "first-but-late", tag=1)
            idx, val = yield from comm.waitany(reqs)
            yield from comm.waitall(reqs)
            return (idx, val)

        res = small_world.run(program)
        # tag 2 arrives first (sent before the compute delay).
        assert all(v == (1, "second") for v in res.rank_results)

    def test_anyof_ties_resolve_to_lowest_index(self, arm_small):
        from repro.des import AnyOf, Engine

        eng = Engine()
        t1, t2 = eng.timeout(1.0, "a"), eng.timeout(1.0, "b")

        def waiter():
            return (yield AnyOf(eng, [t1, t2]))

        p = eng.process(waiter())
        eng.run()
        assert p.value == (0, "a")

    def test_anyof_rejects_empty(self):
        from repro.des import AnyOf, Engine
        from repro.util.errors import SimulationError

        with pytest.raises(SimulationError):
            AnyOf(Engine(), [])


class TestSplit:
    def test_even_odd_split(self, small_world):
        def program(comm):
            sub = yield from comm.split(comm.rank % 2)
            total = yield from sub.allreduce(np.array([float(comm.rank)]))
            return (sub.rank, sub.size, float(total[0]))

        res = small_world.run(program)
        for world_rank, (sub_rank, sub_size, total) in enumerate(res.rank_results):
            assert sub_size == 4
            assert sub_rank == world_rank // 2
            assert total == (12.0 if world_rank % 2 == 0 else 16.0)

    def test_split_key_reorders(self, small_world):
        def program(comm):
            # reverse order within one group
            sub = yield from comm.split(0, key=comm.size - comm.rank)
            return sub.rank

        res = small_world.run(program)
        assert res.rank_results == [7, 6, 5, 4, 3, 2, 1, 0]

    def test_traffic_isolated_between_subcomms(self, small_world):
        """A wildcard receive in one subcomm must not steal the other's
        messages even with identical (source, tag) pairs."""

        def program(comm):
            sub = yield from comm.split(comm.rank % 2)
            if sub.rank == 0:
                yield from sub.send(1, f"color{comm.rank % 2}", tag=5)
                return None
            if sub.rank == 1:
                return (yield from sub.recv(0, tag=5))
            return None

        res = small_world.run(program)
        assert res.rank_results[2] == "color0"
        assert res.rank_results[3] == "color1"

    def test_nested_split(self, small_world):
        def program(comm):
            half = yield from comm.split(comm.rank // 4)
            quarter = yield from half.split(half.rank // 2)
            total = yield from quarter.allreduce(np.array([1.0]))
            return (quarter.size, float(total[0]))

        res = small_world.run(program)
        assert all(v == (2, 2.0) for v in res.rank_results)

    def test_dup_preserves_group(self, small_world):
        def program(comm):
            dup = yield from comm.dup()
            total = yield from dup.allreduce(np.array([1.0]))
            return (dup.rank, dup.size, float(total[0]))

        res = small_world.run(program)
        for world_rank, (r, s, t) in enumerate(res.rank_results):
            assert (r, s, t) == (world_rank, 8, 8.0)


class TestReduceScatterAndScan:
    def test_reduce_scatter_block_sum(self, small_world):
        def program(comm):
            blocks = [np.array([float(comm.rank * 10 + i)])
                      for i in range(comm.size)]
            mine = yield from comm.reduce_scatter_block(blocks)
            return float(mine[0])

        res = small_world.run(program)
        # block i reduced over ranks r: sum_r (10 r + i) = 280 + 8 i
        assert res.rank_results == [280.0 + 8 * i for i in range(8)]

    def test_reduce_scatter_single_rank(self, arm_small):
        world = World(RankMapping(arm_small, n_nodes=1, ranks_per_node=1))

        def program(comm):
            return (yield from comm.reduce_scatter_block([np.array([3.0])]))

        assert float(world.run(program).rank_results[0][0]) == 3.0

    def test_reduce_scatter_wrong_arity(self, small_world):
        def program(comm):
            yield from comm.reduce_scatter_block([1.0])

        with pytest.raises(ConfigurationError):
            small_world.run(program)

    def test_inclusive_scan(self, small_world):
        def program(comm):
            return (yield from comm.scan(comm.rank + 1))

        res = small_world.run(program)
        assert res.rank_results == [sum(range(1, r + 2)) for r in range(8)]

    def test_exclusive_scan(self, small_world):
        def program(comm):
            return (yield from comm.scan(comm.rank + 1, exclusive=True))

        res = small_world.run(program)
        assert res.rank_results[0] is None
        assert res.rank_results[1:] == [sum(range(1, r + 1))
                                        for r in range(1, 8)]

    def test_scan_with_max(self, small_world):
        def program(comm):
            vals = [5, 1, 7, 2, 9, 0, 3, 8]
            return int((yield from comm.scan(np.array([vals[comm.rank]]),
                                             op=ReduceOp.MAX))[0])

        res = small_world.run(program)
        assert res.rank_results == [5, 5, 7, 7, 9, 9, 9, 9]
