"""Dynamic resilience subsystem: schedules, injector semantics, robust
MPI, scheduler degradation, checkpoint/restart, and the campaign driver.
"""

from __future__ import annotations

import json
import math

import pytest
from hypothesis import given, settings

from repro.des import Engine
from repro.machine import cte_arm
from repro.network.model import network_for
from repro.resilience import (
    CheckpointModel,
    FaultSchedule,
    LinkDegrade,
    LinkRecover,
    NodeCrash,
    NoiseBurst,
    RankFailure,
    ResiliencePolicy,
    SlowdownOnset,
    random_schedule,
    resilience_campaign,
)
from repro.sched import AllocationPolicy, Job, Scheduler
from repro.simmpi import RankMapping, World
from repro.util.errors import (
    AllocationError,
    ConfigurationError,
    DeadlockError,
    SimulationError,
)

from tests.strategies import ProgramSpec, fault_schedules, program_specs

_CLUSTER = cte_arm(16)


def _world(n_nodes=4, ranks_per_node=2, **kwargs) -> World:
    mapping = RankMapping(_CLUSTER, n_nodes=n_nodes,
                          ranks_per_node=ranks_per_node)
    return World(mapping, **kwargs)


def _ring_program(steps=5, compute_s=1e-3, size=65536):
    def program(comm):
        comm.set_phase("ring")
        p = comm.size
        for step in range(steps):
            yield from comm.compute(compute_s)
            if p > 1:
                yield from comm.sendrecv(
                    (comm.rank + 1) % p, comm.rank,
                    source=(comm.rank - 1) % p, tag=step, size=size,
                )
        return comm.rank

    return program


# ---------------------------------------------------------------------------
# schedules
# ---------------------------------------------------------------------------


class TestSchedule:
    def test_sorted_by_time(self):
        sched = FaultSchedule([
            NoiseBurst(0.5, duration=0.1),
            NodeCrash(0.1, node=1),
            LinkDegrade(0.3, node=0, factor=0.5),
        ])
        assert [e.at for e in sched] == [0.1, 0.3, 0.5]
        assert sched.has_crashes() and len(sched.crashes) == 1
        assert sched.max_node() == 1
        assert sched.horizon == pytest.approx(0.6)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            NodeCrash(-1.0, node=0)
        with pytest.raises(ConfigurationError):
            NodeCrash(math.inf, node=0)
        with pytest.raises(ConfigurationError):
            LinkDegrade(0.0, node=0, factor=1.5)
        with pytest.raises(ConfigurationError):
            LinkDegrade(0.0, node=0, factor=0.5, direction="up")
        with pytest.raises(ConfigurationError):
            SlowdownOnset(0.0, node=0, factor=0.0)
        with pytest.raises(ConfigurationError):
            NoiseBurst(0.0, duration=0.0)
        with pytest.raises(ConfigurationError):
            FaultSchedule(["not-an-event"])  # type: ignore[list-item]

    def test_dict_roundtrip(self):
        sched = FaultSchedule([
            NodeCrash(0.1, node=2),
            LinkDegrade(0.2, node=1, factor=0.25, direction="send"),
            LinkRecover(0.3, node=1),
            SlowdownOnset(0.4, node=0, factor=0.5, core=3),
            NoiseBurst(0.5, duration=0.05, amplitude=0.2),
        ])
        dicts = sched.to_dicts()
        json.dumps(dicts)  # JSON-serializable
        assert FaultSchedule.from_dicts(dicts) == sched

    def test_from_dicts_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            FaultSchedule.from_dicts([{"kind": "meteor", "at": 0.0}])

    def test_random_schedule_deterministic(self):
        a = random_schedule(8, 10, horizon=1.0, seed=7)
        b = random_schedule(8, 10, horizon=1.0, seed=7)
        assert a == b and len(a) == 10
        c = random_schedule(8, 10, horizon=1.0, seed=8)
        assert a != c

    def test_random_schedule_crash_cap(self):
        sched = random_schedule(
            8, 30, horizon=1.0, kinds=("crash",), max_crashes=2, seed=1
        )
        assert len(sched.crashes) == 2
        assert all(c.node != 0 for c in sched.crashes)

    def test_schedule_out_of_range_node_rejected_by_world(self):
        with pytest.raises(ConfigurationError):
            _world(n_nodes=2, fault_schedule=FaultSchedule(
                [NodeCrash(0.1, node=5)]
            ))


# ---------------------------------------------------------------------------
# policy + engine-level primitives
# ---------------------------------------------------------------------------


class TestPolicyAndEngine:
    def test_policy_validation(self):
        with pytest.raises(ConfigurationError):
            ResiliencePolicy(recv_timeout=0.0)
        with pytest.raises(ConfigurationError):
            ResiliencePolicy(backoff=0.5)
        with pytest.raises(ConfigurationError):
            ResiliencePolicy(max_retries=-1)
        assert ResiliencePolicy(recv_timeout=None).total_patience() == math.inf
        pol = ResiliencePolicy(recv_timeout=1.0, max_retries=2, backoff=2.0)
        assert pol.total_patience() == pytest.approx(7.0)

    def test_timeout_rejects_nonfinite_delay(self):
        engine = Engine()
        with pytest.raises(SimulationError):
            engine.timeout(math.inf)
        with pytest.raises(SimulationError):
            engine.timeout(-1.0)

    def test_process_kill(self):
        engine = Engine()
        log = []

        def victim():
            log.append("start")
            yield 1.0
            log.append("never")

        proc = engine.process(victim())
        kill_done = []

        def killer():
            yield 0.5
            kill_done.append(proc.kill("killed"))

        engine.process(killer())
        engine.run()
        assert log == ["start"]
        assert kill_done == [True]
        assert proc.value == "killed"
        # killing a completed process is a no-op
        assert proc.kill("again") is False

    def test_network_fault_epoch_and_unreachable(self):
        net = network_for(_CLUSTER, n_nodes=4)
        base = net.p2p_time(0, 1, 65536)
        assert net.fault_epoch == 0
        net.apply_fault_transition(lambda fm: fm.degrade_receiver(1, 0.5))
        assert net.fault_epoch == 1
        assert net.p2p_time(0, 1, 65536) == pytest.approx(2 * base)
        net.apply_fault_transition(lambda fm: fm.degrade_receiver(1, 0.0))
        assert net.p2p_time(0, 1, 65536) == math.inf
        net.apply_fault_transition(lambda fm: fm.restore(1))
        assert net.p2p_time(0, 1, 65536) == pytest.approx(base)
        assert net.fault_epoch == 3


# ---------------------------------------------------------------------------
# mid-run transitions
# ---------------------------------------------------------------------------


class TestMidRunTransitions:
    def test_degrade_slows_then_recover_restores(self):
        program = _ring_program(steps=20, compute_s=0.0, size=262144)
        healthy = _world(trace=False).run(program)
        degraded = _world(trace=False, fault_schedule=FaultSchedule(
            [LinkDegrade(0.0, node=1, factor=0.25, direction="both")]
        ), resilience=ResiliencePolicy(recv_timeout=None)).run(program)
        recovered = _world(trace=False, fault_schedule=FaultSchedule([
            LinkDegrade(0.0, node=1, factor=0.25, direction="both"),
            LinkRecover(healthy.elapsed * 0.3, node=1),
        ]), resilience=ResiliencePolicy(recv_timeout=None)).run(program)
        assert degraded.elapsed > healthy.elapsed * 1.5
        assert healthy.elapsed < recovered.elapsed < degraded.elapsed
        assert degraded.completed and recovered.completed

    def test_slowdown_onset_is_dynamic(self):
        program = _ring_program(steps=10, compute_s=1e-3, size=64)
        healthy = _world(trace=False).run(program)
        onset = _world(trace=False, fault_schedule=FaultSchedule(
            [SlowdownOnset(healthy.elapsed * 0.5, node=0, factor=0.5)]
        )).run(program)
        whole = _world(trace=False, fault_schedule=FaultSchedule(
            [SlowdownOnset(0.0, node=0, factor=0.5)]
        )).run(program)
        assert healthy.elapsed < onset.elapsed < whole.elapsed

    def test_noise_burst_restores_amplitude(self):
        program = _ring_program(steps=10, compute_s=1e-3, size=64)
        world = _world(trace=False, fault_schedule=FaultSchedule(
            [NoiseBurst(0.0, duration=1e-4, amplitude=0.5)]
        ))
        result = world.run(program)
        assert world.compute_noise == 0.0  # restored after the burst
        assert result.completed
        healthy = _world(trace=False).run(program)
        assert result.elapsed > healthy.elapsed

    def test_elapsed_not_inflated_by_schedule_horizon(self):
        program = _ring_program(steps=2, compute_s=1e-4, size=64)
        world = _world(trace=False, fault_schedule=FaultSchedule(
            [NoiseBurst(50.0, duration=1.0, amplitude=0.3)]
        ))
        result = world.run(program)
        assert result.elapsed < 1.0  # not the injector's 51s tail


# ---------------------------------------------------------------------------
# node crash + robust MPI
# ---------------------------------------------------------------------------


class TestNodeCrash:
    def test_crash_surfaces_rank_failures(self):
        program = _ring_program(steps=50, compute_s=1e-3, size=65536)
        world = _world(fault_schedule=FaultSchedule(
            [NodeCrash(5e-3, node=3)]
        ))
        result = world.run(program)
        state = result.resilience
        assert state is not None
        assert not result.completed
        failures = result.rank_failures
        assert failures and all(isinstance(f, RankFailure) for f in failures)
        crashed = [f for f in failures if f.kind == "crash"]
        assert sorted(f.rank for f in crashed) == [6, 7]
        assert state.failed_nodes == {3}
        # surviving neighbours detected the dead peer
        assert state.detections
        assert state.report.by_rule("RES001")
        assert state.report.by_rule("RES002")
        # all of this is JSON-representable
        json.loads(state.report.to_json())

    def test_unreachable_rendezvous_send_fails(self):
        def program(comm):
            if comm.rank == 0:
                yield 2e-3  # let the crash land first
                yield from comm.send(1, b"x", size=1 << 20)  # rendezvous
            else:
                yield from comm.recv(0)
            return "done"

        world = _world(n_nodes=2, ranks_per_node=1,
                       fault_schedule=FaultSchedule(
                           [NodeCrash(1e-3, node=1)]
                       ))
        result = world.run(program)
        assert not result.completed
        kinds = {f.kind for f in result.rank_failures}
        assert "send-unreachable" in kinds
        assert result.resilience.report.by_rule("RES010")

    def test_crash_without_policy_is_a_deadlock_not_a_hang(self):
        program = _ring_program(steps=50, compute_s=1e-3, size=65536)
        world = _world(fault_schedule=FaultSchedule(
            [NodeCrash(5e-3, node=3)]
        ), resilience=ResiliencePolicy(recv_timeout=None, send_timeout=None))
        with pytest.raises(DeadlockError):
            world.run(program)

    def test_straggler_retried_not_declared_dead(self):
        """Timeouts fire against a slow-but-alive peer: the receive is
        re-armed and the run completes with no failures."""
        program = _ring_program(steps=5, compute_s=2e-3, size=64)
        world = _world(fault_schedule=FaultSchedule(
            [SlowdownOnset(0.0, node=1, factor=0.2)]
        ), resilience=ResiliencePolicy(recv_timeout=1e-3, max_retries=6))
        result = world.run(program)
        assert result.completed
        assert not result.resilience.detections
        assert not result.resilience.suspects


# ---------------------------------------------------------------------------
# scheduler degradation
# ---------------------------------------------------------------------------


class TestSchedulerDegradation:
    def test_fail_node_excluded_from_allocation(self):
        sched = Scheduler(_CLUSTER)
        sched.fail_node(0)
        assert sched.free_nodes == _CLUSTER.n_nodes - 1
        job = Job(name="j", n_nodes=4)
        nodes = sched.allocate(job)
        assert 0 not in nodes
        sched.repair_node(0)
        assert sched.failed_nodes == set()

    def test_fail_node_range_checked(self):
        with pytest.raises(AllocationError):
            Scheduler(_CLUSTER).fail_node(99)

    def test_reallocate_keeps_survivors(self):
        sched = Scheduler(_CLUSTER)
        job = Job(name="j", n_nodes=4)
        nodes = sched.allocate(job)  # compact: [0, 1, 2, 3]
        sched.fail_node(nodes[2])
        new = sched.reallocate(job, nodes)
        assert nodes[2] not in new
        assert set(nodes) - {nodes[2]} <= set(new)
        assert len(new) == 4

    def test_reallocate_noop_without_failures(self):
        sched = Scheduler(_CLUSTER)
        job = Job(name="j", n_nodes=2)
        nodes = sched.allocate(job)
        assert sched.reallocate(job, nodes) == sorted(nodes)

    def test_reallocate_scatter_policy(self):
        sched = Scheduler(_CLUSTER, seed=3)
        job = Job(name="j", n_nodes=4)
        nodes = sched.allocate(job)
        sched.fail_node(nodes[0])
        new = sched.reallocate(job, nodes, AllocationPolicy.SCATTER)
        assert nodes[0] not in new and len(new) == 4

    def test_reallocate_exhausted_capacity(self):
        cluster = cte_arm(4)
        sched = Scheduler(cluster)
        job = Job(name="j", n_nodes=4)
        nodes = sched.allocate(job)
        sched.fail_node(nodes[1])
        with pytest.raises(AllocationError):
            sched.reallocate(job, nodes)


# ---------------------------------------------------------------------------
# checkpoint/restart
# ---------------------------------------------------------------------------


class TestCheckpointModel:
    def test_no_crashes(self):
        model = CheckpointModel(interval_s=60, write_cost_s=2,
                                restart_cost_s=10)
        tos = model.time_to_solution(150.0)
        assert tos.n_restarts == 0 and tos.lost_work_s == 0.0
        assert tos.checkpoint_overhead_s == pytest.approx(4.0)  # 2 writes
        assert tos.total_s == pytest.approx(154.0)

    def test_exact_boundary_skips_final_write(self):
        model = CheckpointModel(interval_s=60, write_cost_s=2)
        assert model.checkpoint_overhead(120.0) == pytest.approx(2.0)
        assert model.checkpoint_overhead(59.0) == 0.0

    def test_crash_rolls_back_to_last_checkpoint(self):
        model = CheckpointModel(interval_s=60, write_cost_s=2,
                                restart_cost_s=10)
        # crash at wall 100: one checkpoint done (60s work durable),
        # 38s of work since it is lost
        tos = model.time_to_solution(150.0, [100.0])
        assert tos.n_restarts == 1
        assert tos.lost_work_s == pytest.approx(38.0)
        assert tos.restart_overhead_s == pytest.approx(10.0)
        assert tos.total_s == pytest.approx(
            100.0 + 10.0 + 90.0 + model.checkpoint_overhead(90.0)
        )
        assert 0.0 < tos.overhead_fraction < 1.0

    def test_crash_after_completion_ignored(self):
        model = CheckpointModel(interval_s=60, write_cost_s=2)
        assert model.time_to_solution(30.0, [1000.0]).n_restarts == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CheckpointModel(interval_s=0.0)
        with pytest.raises(ConfigurationError):
            CheckpointModel(write_cost_s=-1.0)
        with pytest.raises(ConfigurationError):
            CheckpointModel().time_to_solution(-1.0)


# ---------------------------------------------------------------------------
# campaign + CLI
# ---------------------------------------------------------------------------

_FAST_POLICY = ResiliencePolicy(recv_timeout=2e-3, max_retries=2)


class TestCampaign:
    def test_sweep_detects_and_prices_the_crash(self):
        campaign = resilience_campaign(
            n_nodes=4, ranks_per_node=2, intensities=(0, 1), steps=5,
            policy=_FAST_POLICY,
        )
        healthy, faulty = campaign.trials
        assert healthy.intensity == 0 and healthy.completed
        assert healthy.n_rank_failures == 0
        assert not faulty.completed and faulty.n_rank_failures > 0
        assert faulty.n_detections > 0
        assert faulty.detection_latency is not None
        assert faulty.detection_latency > 0.0
        assert faulty.reallocation is not None
        assert faulty.time_to_solution is not None
        assert faulty.time_to_solution.n_restarts == 1
        rules = {d["rule"] for d in faulty.diagnostics}
        assert {"RES001", "RES002", "RES008", "RES009"} <= rules

    def test_json_roundtrip(self):
        campaign = resilience_campaign(
            n_nodes=2, ranks_per_node=1, intensities=(1,), steps=3,
            policy=_FAST_POLICY,
        )
        payload = json.loads(campaign.to_json())
        assert payload["title"] == "resilience campaign"
        trial = payload["trials"][0]
        assert FaultSchedule.from_dicts(trial["schedule"]).has_crashes()
        assert trial["rank_failures"] > 0
        assert payload["rule_counts"].get("RES001") == 1
        assert campaign.render()

    def test_cli_json(self, capsys):
        from repro.harness.cli import main

        code = main(["resilience", "--nodes", "2", "--ranks-per-node", "1",
                     "--intensity", "1", "--steps", "3", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_nodes"] == 2
        assert payload["trials"][0]["intensity"] == 1

    def test_cli_rejects_bad_cluster(self, capsys):
        from repro.harness.cli import main

        assert main(["resilience", "--cluster", "nope"]) == 2


# ---------------------------------------------------------------------------
# properties
# ---------------------------------------------------------------------------


@settings(max_examples=15, deadline=None)
@given(program_specs(max_ops=4), fault_schedules(n_nodes=2, allow_crash=True))
def test_fault_runs_deterministic_given_seed(spec, schedule):
    """Same program + same schedule => bit-identical outcome."""

    def run():
        world = World(
            RankMapping(_CLUSTER, n_nodes=2,
                        ranks_per_node=spec.n_ranks // 2 or 1),
            trace=False,
            fault_schedule=schedule,
            resilience=_FAST_POLICY,
        )
        return world.run(spec.build())

    a, b = run(), run()
    assert a.elapsed == b.elapsed
    assert [repr(r) for r in a.rank_results] == [repr(r) for r in b.rank_results]


@settings(max_examples=15, deadline=None)
@given(program_specs(max_ops=4),
       fault_schedules(n_nodes=2, allow_crash=False))
def test_degradation_never_makes_a_run_faster(spec, schedule):
    """For crash-free schedules every fault is a pure slowdown."""
    mapping = RankMapping(_CLUSTER, n_nodes=2,
                          ranks_per_node=spec.n_ranks // 2 or 1)
    off = ResiliencePolicy(recv_timeout=None, send_timeout=None)
    healthy = World(mapping, trace=False).run(spec.build())
    faulty = World(mapping, trace=False, fault_schedule=schedule,
                   resilience=off).run(spec.build())
    assert faulty.completed
    assert faulty.elapsed >= healthy.elapsed * (1.0 - 1e-12)
