"""Scheduler: allocation policies, memory feasibility, NP boundaries."""

import pytest

from repro.network.model import network_for
from repro.sched import AllocationPolicy, Job, Scheduler
from repro.util.errors import AllocationError, ConfigurationError, OutOfMemoryError
from repro.util.units import GB


class TestJob:
    def test_totals(self):
        j = Job("x", n_nodes=4, memory_per_node_bytes=8 * GB)
        assert j.total_memory_bytes == 32 * GB

    def test_with_nodes_rescales(self):
        j = Job("x", n_nodes=4, memory_per_node_bytes=8 * GB)
        j2 = j.with_nodes(8)
        assert j2.memory_per_node_bytes == 4 * GB
        assert j2.total_memory_bytes == j.total_memory_bytes

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Job("x", n_nodes=0)
        with pytest.raises(ConfigurationError):
            Job("x", n_nodes=1, memory_per_node_bytes=-1)


class TestScheduler:
    def test_memory_check_np(self, arm):
        sched = Scheduler(arm)
        fits = Job("ok", n_nodes=2, memory_per_node_bytes=30 * GB)
        sched.check_memory(fits)
        too_big = Job("np", n_nodes=2, memory_per_node_bytes=40 * GB)
        with pytest.raises(OutOfMemoryError) as exc:
            sched.check_memory(too_big)
        assert "minimum feasible nodes: 3" in str(exc.value)

    def test_min_feasible_nodes(self, arm):
        sched = Scheduler(arm)
        job = Job("x", n_nodes=1, memory_per_node_bytes=320 * GB)
        assert sched.min_feasible_nodes(job) == 10

    def test_allocate_and_release(self, arm):
        sched = Scheduler(arm)
        nodes = sched.allocate(Job("a", n_nodes=10))
        assert len(nodes) == 10 and sched.free_nodes == 182
        sched.release(nodes)
        assert sched.free_nodes == 192

    def test_exhaustion(self, arm_small):
        sched = Scheduler(arm_small)
        sched.allocate(Job("a", n_nodes=10))
        with pytest.raises(AllocationError):
            sched.allocate(Job("b", n_nodes=5))

    def test_compact_is_contiguous(self, arm):
        sched = Scheduler(arm)
        nodes = sched.allocate(Job("a", n_nodes=6), AllocationPolicy.COMPACT)
        assert nodes == list(range(6))

    def test_scatter_deterministic_per_seed(self, arm):
        a = Scheduler(arm, seed=3).allocate(Job("a", n_nodes=6),
                                            AllocationPolicy.SCATTER)
        b = Scheduler(arm, seed=3).allocate(Job("a", n_nodes=6),
                                            AllocationPolicy.SCATTER)
        assert a == b

    def test_compact_smaller_diameter_than_scatter(self, arm):
        topo = network_for(arm).topology
        sched = Scheduler(arm, topo, seed=1)
        compact = sched.allocate(Job("a", n_nodes=12), AllocationPolicy.COMPACT)
        d_compact = sched.allocation_diameter(compact)
        sched.release(compact)
        scatter = sched.allocate(Job("b", n_nodes=12), AllocationPolicy.SCATTER)
        d_scatter = sched.allocation_diameter(scatter)
        assert d_compact < d_scatter

    def test_diameter_needs_topology(self, arm):
        sched = Scheduler(arm)
        with pytest.raises(AllocationError):
            sched.allocation_diameter([0, 1])

    def test_single_node_diameter_zero(self, arm):
        topo = network_for(arm).topology
        assert Scheduler(arm, topo).allocation_diameter([5]) == 0
