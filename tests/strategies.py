"""Hypothesis strategies for random simulated-MPI programs and random
fault schedules.

A drawn :class:`ProgramSpec` is a deterministic SPMD program — a sequence
of collective/point-to-point/compute operations every rank executes in
lockstep — compiled to a rank-program generator by :meth:`ProgramSpec.build`.
All ranks run the same op list (so collective call sequences always match)
and every operand is derived from the op's parameters and the rank id, so
two runs of the same spec are bit-identical.

``fault_schedules`` draws :class:`~repro.resilience.FaultSchedule`\\ s
over a fixed node count; ``allow_crash=False`` restricts the mix to
degradation-only events (link degrade/recover, slowdown, noise) — the
subset for which "faults never make a run faster" is a theorem (a crash
can shorten a run by killing ranks early).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

from hypothesis import strategies as st

from repro.resilience import (
    FaultSchedule,
    LinkDegrade,
    LinkRecover,
    NodeCrash,
    NoiseBurst,
    SlowdownOnset,
)

#: op kinds a ProgramSpec may contain; ops carrying a size use
#: power-of-two payloads straddling the eager threshold.
_SIZES = (64, 4096, 65536, 262144)


@dataclass(frozen=True)
class ProgramSpec:
    """A reproducible SPMD program: (op, arg) pairs run by every rank."""

    n_ranks: int
    ops: tuple[tuple[str, int], ...]

    def build(self):
        """Compile to a rank-program generator function."""
        ops = self.ops

        def program(comm) -> Generator[Any, Any, Any]:
            comm.set_phase("prop")
            acc: Any = float(comm.rank + 1)
            p = comm.size
            for step, (op, arg) in enumerate(ops):
                if op == "barrier":
                    yield from comm.barrier()
                elif op == "allreduce":
                    acc = yield from comm.allreduce(acc, size=arg)
                elif op == "bcast":
                    root = arg % p
                    payload = acc if comm.rank == root else None
                    acc = yield from comm.bcast(payload, root=root, size=64)
                elif op == "reduce":
                    root = arg % p
                    got = yield from comm.reduce(acc, root=root, size=64)
                    acc = got if comm.rank == root else acc
                elif op == "allgather":
                    blocks = yield from comm.allgather(acc, size=arg)
                    acc = sum(blocks)
                elif op == "alltoall":
                    out = yield from comm.alltoall(
                        [comm.rank * p + d for d in range(p)], size=arg
                    )
                    acc = float(sum(out))
                elif op == "compute":
                    yield from comm.compute(arg * 1e-6)
                elif op == "ring":
                    if p > 1:
                        got = yield from comm.sendrecv(
                            (comm.rank + 1) % p,
                            acc,
                            source=(comm.rank - 1) % p,
                            tag=1000 + step,
                            size=arg,
                        )
                        acc = got
                else:  # pragma: no cover - strategy never draws this
                    raise AssertionError(f"unknown op {op!r}")
            return acc

        return program


def _ops(kinds: tuple[str, ...]) -> st.SearchStrategy:
    def one(kind: str) -> st.SearchStrategy:
        if kind in ("barrier",):
            return st.just((kind, 0))
        if kind in ("bcast", "reduce"):
            return st.tuples(st.just(kind), st.integers(0, 7))
        if kind == "compute":
            return st.tuples(st.just(kind), st.integers(1, 50))
        return st.tuples(st.just(kind), st.sampled_from(_SIZES))

    return st.one_of([one(k) for k in kinds])


#: every op kind; ``collective_only=True`` below restricts to the subset
#: on which the analytic fast path is *exact* for arbitrary entry skew:
#: the symmetric collectives (every rank waits on messages from others,
#: so no completion is ever clamped to the collective's last arrival)
#: plus uniform compute.  Rooted collectives (bcast/reduce) let the root
#: run ahead in the DES via eager sends while the fast path resumes it at
#: the last arrival — a documented approximation, differentially covered
#: by the fixed-program tests and the 5% suite in test_fastcoll.py.
_ALL_KINDS = ("barrier", "allreduce", "bcast", "reduce", "allgather",
              "alltoall", "compute", "ring")
_COLLECTIVE_KINDS = ("barrier", "allreduce", "allgather", "alltoall",
                     "compute")


@st.composite
def program_specs(draw, *, collective_only: bool = False,
                  max_ops: int = 6) -> ProgramSpec:
    """Draw a random SPMD program over 2, 4 or 8 ranks."""
    n_ranks = draw(st.sampled_from([2, 4, 8]))
    kinds = _COLLECTIVE_KINDS if collective_only else _ALL_KINDS
    ops = draw(st.lists(_ops(kinds), min_size=1, max_size=max_ops))
    return ProgramSpec(n_ranks=n_ranks, ops=tuple(ops))


#: CommOp kinds drawn for random IR programs.  Restricted to the subset on
#: which fastcoll ≡ DES holds exactly for arbitrary entry skew: the
#: symmetric collectives (allreduce/allgather/alltoall/barrier) plus the
#: ops the fast path never touches (halo/ring/p2p sendrecvs, gather).
#: The rooted bcast/reduce are excluded for the same reason they are
#: excluded from ``_COLLECTIVE_KINDS`` above.
_IR_EXACT_COMM = ("allreduce", "allgather", "alltoall", "halo", "ring",
                  "p2p", "gather")


@st.composite
def ir_programs(draw, *, max_phases: int = 3, max_ops: int = 3,
                max_steps: int = 3, rich: bool = False):
    """Draw a random bulk-synchronous :class:`repro.ir.Program`.

    Structure: ``steps`` repetitions of 1..``max_phases`` phases, each
    holding fixed-seconds compute, barriers, and exact-subset CommOps.
    Rank counts are chosen by the test (programs carry no rank count);
    use power-of-two ranks so the fastcoll allreduce stays exact.

    ``rich=True`` widens the op mix with the analytic-only shapes the IR
    optimizer must handle — SerialOps, MemOps, explicit-rate roofline
    ComputeOps, fractional CommOp counts — and wraps some phases in
    nested loops, including zero- and one-trip loops.  Rich programs are
    meant for optimizer/batch properties, not DES differentials (the DES
    subsamples fractional-count CommOps by step index).
    """
    from repro.ir import (
        Barrier,
        CommOp,
        ComputeOp,
        Loop,
        MemOp,
        Phase,
        Program,
        SerialOp,
    )

    kinds = ("compute", "barrier", "comm")
    if rich:
        kinds = kinds + ("serial", "mem", "roofline")

    def one_op(i):
        kind = draw(st.sampled_from(kinds))
        if kind == "compute":
            return ComputeOp(seconds=draw(st.integers(1, 50)) * 1e-6,
                             imbalance=draw(st.sampled_from([1.0, 1.25]))
                             if rich else 1.0)
        if kind == "barrier":
            return Barrier()
        if kind == "serial":
            return SerialOp(draw(st.integers(0, 30)) * 1e-6)
        if kind == "mem":
            return MemOp(float(draw(st.sampled_from((0, 4096, 1 << 20)))))
        if kind == "roofline":
            return ComputeOp(
                flops=float(draw(st.sampled_from((0, 10**6, 10**9)))),
                bytes_moved=float(draw(st.sampled_from((0, 1 << 16)))),
                rate_per_core=draw(st.sampled_from((1e9, 4e9))),
                imbalance=draw(st.sampled_from([1.0, 1.5])),
            )
        return CommOp(
            draw(st.sampled_from(_IR_EXACT_COMM)),
            draw(st.sampled_from(_SIZES)),
            count=draw(st.sampled_from([1.0, 2.0, 0.5] if rich
                                       else [1.0, 2.0])),
            neighbors=draw(st.sampled_from([2, 4, 6])),
        )

    n_phases = draw(st.integers(1, max_phases))
    phases = tuple(
        Phase(
            f"p{i}",
            tuple(one_op(i) for _ in range(draw(st.integers(1, max_ops)))),
        )
        for i in range(n_phases)
    )
    body: tuple = phases
    if rich and draw(st.booleans()):
        # wrap a suffix of the phases in a nested loop (possibly empty
        # or single-trip — the optimizer's fold/collapse edge cases)
        cut = draw(st.integers(0, len(phases)))
        trips = draw(st.sampled_from([0, 1, 2, 5]))
        body = phases[:cut] + (Loop(trips, phases[cut:]),)
    steps = draw(st.integers(1, max_steps))
    return Program(name="random-ir", body=(Loop(steps, body),),
                   steps=steps)


@st.composite
def clean_ir_programs(draw, *, max_phases: int = 3, max_ops: int = 3,
                      max_steps: int = 3):
    """Draw a random SPMD IR program that is statically clean **by
    construction** — the zero-false-positive half of the defect-injection
    property.

    Construction rules (each closes one real diagnostic class):

    * all ranks run the same op stream (collective sequences agree);
    * every point-to-point pattern is one of the symmetric exchanges the
      lowering matches pairwise (halo/ring/p2p);
    * all user-level sendrecvs in one program share a single payload size:
      they share the one ``("user", 0)`` matching channel, so mixing a
      rendezvous-sized send with a later eager-sized one would be a *true*
      overtaking hazard, not a false positive.

    Collective payloads still vary freely (instance-numbered channels), a
    rooted collective may appear with either root, and a trailing
    collective is always present so trace-level defect injection has a
    victim.
    """
    from repro.ir import Barrier, CommOp, ComputeOp, Loop, Phase, Program

    p2p_size = draw(st.sampled_from(_SIZES))
    kinds = ("compute", "barrier", "allreduce", "allgather", "alltoall",
             "bcast", "reduce", "halo", "ring", "p2p")

    def one_op():
        kind = draw(st.sampled_from(kinds))
        if kind == "compute":
            return ComputeOp(seconds=draw(st.integers(1, 50)) * 1e-6)
        if kind == "barrier":
            return Barrier()
        if kind in ("halo", "ring", "p2p"):
            return CommOp(kind, p2p_size,
                          neighbors=draw(st.sampled_from((2, 4, 6))))
        root = draw(st.integers(0, 1)) if kind in ("bcast", "reduce") else 0
        return CommOp(kind, draw(st.sampled_from(_SIZES)), root=root)

    n_phases = draw(st.integers(1, max_phases))
    phases = tuple(
        Phase(f"p{i}",
              tuple(one_op() for _ in range(draw(st.integers(1, max_ops)))))
        for i in range(n_phases)
    ) + (Phase("sync", (CommOp("allreduce", 64),)),)
    steps = draw(st.integers(1, max_steps))
    return Program(name="random-clean-ir", body=(Loop(steps, phases),),
                   steps=steps)


#: trace-level defect kinds :func:`defect_cases` injects; the fourth kind,
#: ``oversize_footprint``, mutates the program instead of the traces.
_TRACE_DEFECTS = ("drop_collective", "skew_collective_kind",
                  "skew_collective_size")


@dataclass(frozen=True)
class DefectCase:
    """A statically-clean program plus one seeded defect.

    ``mutate_traces`` applies trace-level defects (asymmetric by nature,
    so they are injected into one rank's unrolled trace rather than the
    SPMD program); ``mutated_program`` applies the program-level
    footprint defect.  The analyzer must stay silent on the unmutated
    artifact and flag the mutated one.
    """

    program: Any
    n_ranks: int
    defect: str

    def mutate_traces(self, traces):
        """Inject the defect into rank 1's trace (trace-level kinds)."""
        from repro.ir.analyze import CollEv, Traces

        assert self.defect in _TRACE_DEFECTS
        victim = list(traces.per_rank[1])
        at = next(i for i, ev in enumerate(victim)
                  if isinstance(ev, CollEv))
        ev = victim[at]
        if self.defect == "drop_collective":
            del victim[at]
        elif self.defect == "skew_collective_kind":
            new_kind = "allreduce" if ev.kind != "allreduce" else "barrier"
            victim[at] = ev._replace(kind=new_kind)
        else:  # skew_collective_size
            victim[at] = ev._replace(size=ev.size + 777)
        per_rank = list(traces.per_rank)
        per_rank[1] = victim
        return Traces(
            n_ranks=traces.n_ranks,
            per_rank=per_rank,
            eager_threshold=traces.eager_threshold,
            truncated=traces.truncated,
            op_labels=traces.op_labels,
        )

    def mutated_program(self, memory_bytes_per_node: float):
        """The program with a per-rank footprint no node can hold."""
        from dataclasses import replace

        assert self.defect == "oversize_footprint"
        return replace(self.program,
                       replicated_bytes_per_rank=2.0 * memory_bytes_per_node)


@st.composite
def defect_cases(draw) -> DefectCase:
    """Draw a clean program and one defect to seed into it."""
    program = draw(clean_ir_programs())
    n_ranks = draw(st.sampled_from([2, 4, 8]))
    defect = draw(st.sampled_from(_TRACE_DEFECTS + ("oversize_footprint",)))
    return DefectCase(program=program, n_ranks=n_ranks, defect=defect)


@st.composite
def traffic_configs(draw, *, max_stages: int = 3,
                    max_rate_hz: float = 200.0):
    """Draw a reproducible open-loop traffic shape for the service
    harness (:mod:`repro.service.traffic`).

    Scenario workloads are synthetic labels — schedule generation never
    resolves them, so the determinism/monotonicity/mix properties run
    without pricing anything.  Rates may be zero (a silent stage is a
    legal ramp segment the hazard inversion must skip).
    """
    from repro.service.traffic import Scenario, TrafficConfig

    n_stages = draw(st.integers(1, max_stages))
    stages = tuple(
        (
            draw(st.sampled_from((0.25, 0.5, 1.0, 2.0))),
            draw(st.sampled_from((0.0, 5.0, 25.0, 80.0, max_rate_hz))),
        )
        for _ in range(n_stages)
    )
    # at least one stage must offer load or every schedule is empty
    if all(rate == 0.0 for _, rate in stages):
        stages = stages[:-1] + ((stages[-1][0], 25.0),)
    n_scenarios = draw(st.integers(1, 4))
    scenarios = tuple(
        Scenario(
            name=f"s{i}",
            workload=f"synthetic-{i}",
            n_nodes=draw(st.sampled_from((1, 4, 16))),
            weight=draw(st.sampled_from((0.5, 1.0, 2.0, 4.0))),
        )
        for i in range(n_scenarios)
    )
    return TrafficConfig(
        stages=stages,
        scenarios=scenarios,
        n_clients=draw(st.integers(1, 4)),
        seed=draw(st.integers(0, 2**32 - 1)),
    )


@st.composite
def fault_schedules(draw, *, n_nodes: int, horizon: float = 0.02,
                    allow_crash: bool = True,
                    max_events: int = 4) -> FaultSchedule:
    """Draw a random fault schedule over ``n_nodes`` nodes."""
    nodes = st.integers(0, n_nodes - 1)
    times = st.floats(0.0, horizon, allow_nan=False, allow_infinity=False)
    factors = st.floats(0.2, 0.9, allow_nan=False)
    degrade = st.builds(
        LinkDegrade, times, node=nodes, factor=factors,
        direction=st.sampled_from(["recv", "send", "both"]),
    )
    recover = st.builds(
        LinkRecover, times, node=nodes,
        direction=st.sampled_from(["recv", "send", "both"]),
    )
    slowdown = st.builds(SlowdownOnset, times, node=nodes, factor=factors)
    noise = st.builds(
        NoiseBurst, times,
        duration=st.floats(horizon * 0.05, horizon * 0.5, allow_nan=False),
        amplitude=st.floats(0.05, 0.5, allow_nan=False),
    )
    events = [degrade, recover, slowdown, noise]
    if allow_crash:
        # at most one crash, never node 0 (rank 0 aggregates results)
        crash_nodes = st.integers(min(1, n_nodes - 1), n_nodes - 1)
        events.append(st.builds(NodeCrash, times, node=crash_nodes))
    drawn = draw(st.lists(st.one_of(events), min_size=0,
                          max_size=max_events))
    crashes = [e for e in drawn if isinstance(e, NodeCrash)]
    if len(crashes) > 1:
        keep = crashes[0]
        drawn = [e for e in drawn
                 if not isinstance(e, NodeCrash) or e is keep]
    return FaultSchedule(drawn)
