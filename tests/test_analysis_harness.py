"""Analysis layer, Table IV, experiment harness, CLI."""

import pytest

from repro.analysis import (
    app_speedup,
    flattening_point,
    parallel_efficiency,
    scaling_exponent,
    table4,
    table4_matrix,
)
from repro.harness import list_experiments, run_experiment
from repro.harness.cli import main as cli_main
from repro.util.errors import ConfigurationError


class TestScalingMetrics:
    def test_perfect_scaling_efficiency_one(self):
        nodes = [1, 2, 4, 8]
        times = [8.0, 4.0, 2.0, 1.0]
        assert parallel_efficiency(nodes, times) == pytest.approx([1.0] * 4)
        assert scaling_exponent(nodes, times) == pytest.approx(-1.0)

    def test_flat_curve_exponent_zero(self):
        assert scaling_exponent([1, 2, 4], [5.0, 5.0, 5.0]) == pytest.approx(0.0)

    def test_flattening_point(self):
        nodes = [1, 2, 4, 8, 16]
        times = [16.0, 8.0, 4.0, 3.6, 3.5]  # flattens after 4
        assert flattening_point(nodes, times) == 8

    def test_never_flattens(self):
        assert flattening_point([1, 2, 4], [4.0, 2.0, 1.0]) is None

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            parallel_efficiency([1], [1.0, 2.0])
        with pytest.raises(ConfigurationError):
            scaling_exponent([1], [1.0])


class TestTable4:
    @pytest.fixture(scope="class")
    def matrix(self):
        return table4_matrix()

    def test_all_rows_present(self, matrix):
        assert set(matrix) == {"LINPACK", "HPCG", "Alya", "OpenIFS",
                               "Gromacs", "WRF", "NEMO"}

    def test_synthetics_beat_applications(self, matrix):
        for row, cells in matrix.items():
            for cell in cells:
                if cell.speedup is None:
                    continue
                if row in ("LINPACK", "HPCG"):
                    assert cell.speedup > 1.0
                else:
                    assert cell.speedup < 1.0

    def test_np_cells(self, matrix):
        by = {(c.application, c.n_nodes): c for cells in matrix.values()
              for c in cells}
        assert by[("Alya", 1)].speedup is None
        assert by[("NEMO", 1)].speedup is None
        assert by[("OpenIFS", 16)].speedup is None
        assert by[("OpenIFS", 1)].speedup is not None  # TL255 input

    def test_paper_anchor_cells(self, matrix):
        by = {(c.application, c.n_nodes): c for cells in matrix.values()
              for c in cells}
        assert by[("LINPACK", 1)].speedup == pytest.approx(1.25, abs=0.04)
        assert by[("LINPACK", 192)].speedup == pytest.approx(1.40, abs=0.04)
        assert by[("HPCG", 1)].speedup == pytest.approx(2.50, abs=0.15)
        assert by[("Alya", 16)].speedup == pytest.approx(0.30, abs=0.04)
        assert by[("NEMO", 16)].speedup == pytest.approx(0.56, abs=0.08)
        assert by[("Gromacs", 1)].speedup == pytest.approx(0.32, abs=0.06)
        assert by[("WRF", 1)].speedup == pytest.approx(0.49, abs=0.08)
        assert by[("OpenIFS", 1)].speedup == pytest.approx(0.31, abs=0.05)

    def test_render_shows_np(self):
        text = table4().render()
        assert "NP" in text and "LINPACK" in text

    def test_unknown_app_speedup(self):
        with pytest.raises(KeyError):
            app_speedup("firedrake", 1)


class TestHarness:
    def test_registry_covers_every_table_and_figure(self):
        ids = set(list_experiments())
        expected = {
            "table1_hardware", "table2_stream_builds", "table3_app_builds",
            "table4_speedups", "fig1_fpu", "fig2_stream_openmp",
            "fig3_stream_hybrid", "fig4_netmap", "fig5_netdist",
            "fig6_linpack", "fig7_hpcg", "fig8_alya", "fig9_alya_assembly",
            "fig10_alya_solver", "fig11_nemo", "fig12_gromacs_node",
            "fig13_gromacs_multi", "fig14_openifs_node",
            "fig15_openifs_multi", "fig16_wrf",
        }
        assert expected <= ids

    def test_extensions_registered(self):
        ids = set(list_experiments())
        assert {"ext_paging", "ext_vectorization", "ext_scalar_ooo",
                "ext_faults", "ext_scheduler", "ext_topology"} <= ids

    @pytest.mark.parametrize("exp_id", [
        "table1_hardware", "fig1_fpu", "fig2_stream_openmp",
        "fig3_stream_hybrid", "fig6_linpack", "fig7_hpcg", "ext_paging",
    ])
    def test_fast_experiments_all_hold(self, exp_id):
        result = run_experiment(exp_id)
        failed = [e.render() for e in result.expectations if not e.holds]
        assert not failed, failed

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    def test_result_renders(self):
        text = run_experiment("table1_hardware").render()
        assert "Table I" in text and "paper=" in text


class TestCLI:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig6_linpack" in out

    def test_run_single(self, capsys):
        assert cli_main(["run", "table1_hardware"]) == 0
        assert "70.40" in capsys.readouterr().out

    def test_run_unknown(self, capsys):
        assert cli_main(["run", "nope"]) == 2
