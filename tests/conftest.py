"""Shared fixtures: cluster presets and small simulated-MPI worlds."""

from __future__ import annotations

import pytest

from repro.machine import cte_arm, marenostrum4
from repro.simmpi import RankMapping, World


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="rewrite the golden trace snapshots under tests/golden/ "
        "instead of comparing against them",
    )


@pytest.fixture(scope="session")
def arm():
    return cte_arm()


@pytest.fixture(scope="session")
def mn4():
    return marenostrum4(192)


@pytest.fixture(scope="session")
def arm_small():
    return cte_arm(12)


@pytest.fixture()
def small_world(arm_small):
    """8 ranks over 4 nodes of a 12-node CTE-Arm partition."""
    mapping = RankMapping(arm_small, n_nodes=4, ranks_per_node=2)
    return World(mapping)
