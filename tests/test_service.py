"""Capacity-planning service: core semantics + the concurrency suite.

The load-bearing guarantees (ISSUE 8):

* responses served through the admission batcher are **bit-identical**
  to direct serial ``BatchAnalyticBackend.run_batch`` calls, under
  concurrent hammering;
* no query is dropped or double-answered under races;
* quota rejections are a pure function of a seeded arrival schedule;
* evicting a warm tape under memory pressure never changes results and
  the eviction policy actually bounds resident tape bytes;
* the pinned JSON response shapes in ``tests/golden/
  service_responses.json`` (regenerate with ``--update-golden``).
"""

from __future__ import annotations

import json
import threading
from pathlib import Path

import pytest

from repro.ir import Program, Phase, ComputeOp
from repro.ir.batch import (
    BatchAnalyticBackend,
    BatchJob,
    compile_tape,
    set_tape_budget,
    tape_cache_stats,
)
from repro.machine import cte_arm
from repro.service import (
    AdmissionBatcher,
    CapacityService,
    Query,
    ServiceConfig,
    ServiceError,
    TokenBucket,
    TrafficConfig,
    arrival_schedule,
    encode_result,
)
from repro.service.traffic import Scenario
from repro.util.errors import ConfigurationError

GOLDEN_DIR = Path(__file__).parent / "golden"

#: fast service knobs for tests: generous quota, wide coalescing window.
_FAST = ServiceConfig(quota_rate=1e6, quota_burst=1e6, window_s=0.02)


def _mixed_queries() -> list[Query]:
    """A representative query mix: benches + apps, both clusters, with
    and without overrides."""
    return [
        Query("stream", "cte-arm", 1),
        Query("hpcg", "cte-arm", 8),
        Query("osu", "cte-arm", 8),
        Query("linpack", "mn4", 16),
        Query("nemo", "cte-arm", 16, overrides=(("comm_scale", 1.25),)),
        Query("gromacs", "cte-arm", 8,
              overrides=(("bandwidth_scale", 0.5),)),
        Query("wrf", "mn4", 4),
        Query("alya", "cte-arm", 12, steps=2),
    ]


# -- token bucket -------------------------------------------------------------


class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate=10.0, burst=2.0)
        assert bucket.try_acquire(0.0) == (True, 0.0)
        assert bucket.try_acquire(0.0) == (True, 0.0)
        granted, retry = bucket.try_acquire(0.0)
        assert not granted and retry == pytest.approx(0.1)
        # a tenth of a second refills exactly one token
        assert bucket.try_acquire(0.1) == (True, 0.0)

    def test_deterministic_replay(self):
        stamps = [0.0, 0.01, 0.02, 0.5, 0.51, 0.52, 0.53, 2.0]
        runs = []
        for _ in range(2):
            bucket = TokenBucket(rate=5.0, burst=2.0)
            runs.append([bucket.try_acquire(t) for t in stamps])
        assert runs[0] == runs[1]
        assert any(not granted for granted, _ in runs[0])

    def test_time_never_runs_backwards(self):
        bucket = TokenBucket(rate=1.0, burst=1.0)
        assert bucket.try_acquire(10.0)[0]
        # an out-of-order timestamp must not mint negative elapsed time
        granted, retry = bucket.try_acquire(5.0)
        assert not granted and retry > 0
        assert bucket.try_acquire(11.0)[0]

    def test_rejects_bad_limits(self):
        with pytest.raises(ConfigurationError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ConfigurationError):
            TokenBucket(rate=1.0, burst=-1.0)


# -- request validation -------------------------------------------------------


class TestQueryValidation:
    def test_round_trip(self):
        query = Query("nemo", "cte-arm", 16,
                      overrides=(("comm_scale", 1.25),), client="c1")
        assert Query.from_request(query.to_request()) == query

    @pytest.mark.parametrize("payload", [
        {},
        {"workload": ""},
        {"workload": 7},
        {"workload": "nemo", "n_nodes": 0},
        {"workload": "nemo", "n_nodes": True},
        {"workload": "nemo", "steps": -1},
        {"workload": "nemo", "overrides": {"bogus": 2.0}},
        {"workload": "nemo", "overrides": {"comm_scale": "x"}},
        {"workload": "nemo", "overrides": {"comm_scale": 0.0}},
        {"workload": "nemo", "client": ""},
        {"workload": "nemo", "surprise": 1},
    ])
    def test_malformed_rejected_with_400(self, payload):
        with pytest.raises(ServiceError) as err:
            Query.from_request(payload)
        assert err.value.status == 400

    def test_unknown_workload_is_404(self):
        with CapacityService(_FAST) as svc:
            status, body = svc.handle({"workload": "no-such-thing"})
        assert status == 404
        assert "stream" in body["error"] and "nemo" in body["error"]

    def test_infeasible_point_is_422(self):
        with CapacityService(_FAST) as svc:
            status, body = svc.handle({"workload": "nemo", "n_nodes": 2})
        assert status == 422
        assert "GB" in body["error"]

    def test_oversized_partition_is_422(self):
        with CapacityService(_FAST) as svc:
            status, _ = svc.handle({"workload": "hpcg", "n_nodes": 100000})
        assert status == 422

    def test_unknown_pricing_is_400(self):
        with CapacityService(_FAST) as svc:
            status, body = svc.handle({"workload": "nemo", "n_nodes": 8,
                                       "pricing": "wat"})
        assert status == 400
        assert "ecm" in body["error"] and "roofline" in body["error"]

    def test_app_without_toolchain_defaults_is_422(self):
        # thunderx2 is a registered preset but carries no Table III
        # compiler defaults for the paper apps; benches still price.
        with CapacityService(_FAST) as svc:
            status, body = svc.handle({"workload": "nemo", "n_nodes": 8,
                                       "cluster": "thunderx2"})
            assert status == 422
            assert "compiler" in body["error"]
            status, body = svc.handle({"workload": "qcd", "n_nodes": 8,
                                       "cluster": "thunderx2",
                                       "pricing": "ecm"})
            assert status == 200
            assert body["pricing"] == "ecm"


# -- the concurrency suite ----------------------------------------------------


def _hammer(n_threads: int, worker) -> list:
    """Start ``n_threads`` barrier-released workers, join, re-raise."""
    barrier = threading.Barrier(n_threads)
    failures: list[BaseException] = []
    outputs: list = [None] * n_threads
    def runner(i: int) -> None:
        try:
            barrier.wait(timeout=10)
            outputs[i] = worker(i)
        except BaseException as exc:  # surfaced after join
            failures.append(exc)
    threads = [threading.Thread(target=runner, args=(i,))
               for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not any(t.is_alive() for t in threads), "worker hung"
    if failures:
        raise failures[0]
    return outputs


class TestAdmissionBatcher:
    def test_concurrent_results_bit_identical_to_serial(self):
        queries = _mixed_queries()
        with CapacityService(_FAST) as svc:
            jobs = [svc.job_for(q) for q in queries]
            # serial reference, computed directly (no batcher involved)
            reference = BatchAnalyticBackend()
            expected = [reference.run_batch([job])[0] for job in jobs]

            n_threads = 16
            def worker(i: int):
                out = []
                for j, job in enumerate(jobs):
                    if (i + j) % 2 == 0:  # interleave differently per thread
                        out.append((j, svc.batcher.submit(job)))
                for j, job in reversed(list(enumerate(jobs))):
                    if (i + j) % 2 == 1:
                        out.append((j, svc.batcher.submit(job)))
                return out

            outputs = _hammer(n_threads, worker)
            stats = svc.batcher
            answered = sum(len(o) for o in outputs)
            assert stats.queries == answered == n_threads * len(jobs)
            assert stats.largest_batch > 1, "no coalescing happened"
            for out in outputs:
                for j, result in out:
                    want = expected[j]
                    assert result.elapsed == want.elapsed
                    assert result.phase_seconds == want.phase_seconds
                    assert result.phase_compute == want.phase_compute
                    assert result.phase_comm == want.phase_comm
                    assert result.n_ranks == want.n_ranks

    def test_no_drop_no_double_answer_under_races(self):
        cluster = cte_arm(16)
        program = Program(
            name="svc-race", steps=1,
            body=(Phase("p", (ComputeOp(seconds=1e-6),)),))
        batcher = AdmissionBatcher(window_s=0.005)
        try:
            n_threads, per_thread = 12, 8
            seen = []
            lock = threading.Lock()
            def worker(i: int):
                for k in range(per_thread):
                    result = batcher.submit(
                        BatchJob(program, cluster, 1 + (i + k) % 4))
                    with lock:
                        seen.append((i, k, result))
            _hammer(n_threads, worker)
            assert len(seen) == n_threads * per_thread
            assert len({(i, k) for i, k, _ in seen}) == len(seen)
            assert batcher.queries == n_threads * per_thread
            assert all(r.elapsed > 0 for _, _, r in seen)
        finally:
            batcher.close()

    def test_faulty_job_is_isolated_from_its_batch(self):
        cluster = cte_arm(8)
        program = Program(
            name="svc-isolate", steps=1,
            body=(Phase("p", (ComputeOp(seconds=1e-6),)),))
        good = BatchJob(program, cluster, 2)
        bad = BatchJob(program, cluster, 2, overrides={"bogus": 2.0})
        batcher = AdmissionBatcher(window_s=0.05)
        try:
            def worker(i: int):
                if i == 0:
                    with pytest.raises(ConfigurationError):
                        batcher.submit(bad)
                    return "bad"
                return batcher.submit(good)
            outputs = _hammer(6, worker)
            assert outputs.count("bad") == 1
            results = [o for o in outputs if o != "bad"]
            assert len(results) == 5
            assert len({r.elapsed for r in results}) == 1
        finally:
            batcher.close()

    def test_submit_after_close_is_503(self):
        batcher = AdmissionBatcher()
        batcher.close()
        with pytest.raises(ServiceError) as err:
            batcher.submit(BatchJob(
                Program(name="x", body=(Phase("p", (ComputeOp(seconds=1e-6),)),)),
                cte_arm(4), 1))
        assert err.value.status == 503

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            AdmissionBatcher(max_batch=0)
        with pytest.raises(ConfigurationError):
            AdmissionBatcher(window_s=-1.0)

    @pytest.mark.parametrize("kwargs", [
        {"quota_rate": 0.0},
        {"quota_burst": -1.0},
        {"window_s": -0.001},
        {"max_batch": 0},
        {"tape_budget_bytes": -1},
        {"queue_timeout_s": 0.0},
    ])
    def test_service_config_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            ServiceConfig(**kwargs)


class TestServiceConcurrency:
    def test_concurrent_handle_matches_serial_run_batch(self):
        queries = _mixed_queries()
        with CapacityService(_FAST) as svc:
            reference = BatchAnalyticBackend()
            expected = {
                q: json.dumps(
                    encode_result(q, reference.run_batch([svc.job_for(q)])[0]),
                    sort_keys=True)
                for q in queries
            }

            def worker(i: int):
                out = []
                for q in (queries if i % 2 else list(reversed(queries))):
                    status, body = svc.handle(q.to_request())
                    out.append((q, status, json.dumps(body, sort_keys=True)))
                return out

            outputs = _hammer(10, worker)
            for out in outputs:
                assert len(out) == len(queries)
                for q, status, body in out:
                    assert status == 200
                    assert body == expected[q], q


class TestQuotaDeterminism:
    def _statuses(self, schedule) -> list[int]:
        config = ServiceConfig(quota_rate=20.0, quota_burst=5.0,
                               window_s=0.0)
        with CapacityService(config) as svc:
            return [
                svc.handle(a.scenario.query(a.client).to_request(),
                           now=a.t)[0]
                for a in schedule
            ]

    def test_rejections_pure_function_of_schedule(self):
        mix = (Scenario("cheap", "stream", "cte-arm", 1),
               Scenario("mid", "hpcg", "cte-arm", 8))
        config = TrafficConfig(stages=((0.5, 150.0),), scenarios=mix,
                               n_clients=2, seed=11)
        schedule = arrival_schedule(config)
        assert len(schedule) > 30
        first = self._statuses(schedule)
        second = self._statuses(schedule)
        assert first == second
        assert first.count(429) > 0, "schedule too gentle to test quotas"
        assert first.count(200) > 0

    def test_retry_after_is_positive(self):
        config = ServiceConfig(quota_rate=1.0, quota_burst=1.0,
                               window_s=0.0)
        with CapacityService(config) as svc:
            request = {"workload": "stream", "n_nodes": 1, "client": "c"}
            assert svc.handle(request, now=0.0)[0] == 200
            status, body = svc.handle(request, now=0.0)
            assert status == 429
            assert body["retry_after_seconds"] > 0
            assert svc.stats()["rejected"] == 1


# -- warm-cache eviction ------------------------------------------------------


def _tapeful_program(i: int, rows: int = 64) -> Program:
    return Program(
        name=f"svc-evict-{i}", steps=1,
        body=(Phase("p", tuple(
            ComputeOp(seconds=(j + 1) * 1e-7) for j in range(rows))),))


class TestTapeEviction:
    def teardown_method(self):
        set_tape_budget(None)

    def test_budget_bounds_resident_bytes(self):
        tapes = [_tapeful_program(i) for i in range(24)]
        one = compile_tape(tapes[0]).nbytes
        budget = one * 5
        set_tape_budget(budget)
        for program in tapes:
            compile_tape(program)
            assert tape_cache_stats()["resident_bytes"] <= budget
        stats = tape_cache_stats()
        assert stats["evictions"] > 0
        assert stats["resident_bytes"] <= budget

    def test_oversized_tape_still_serves(self):
        set_tape_budget(1)  # nothing fits; the newest entry must stay
        tape = compile_tape(_tapeful_program(900))
        assert tape.n_rows == 64
        assert len(tape.cols["seconds"]) == 64

    def test_eviction_never_changes_results(self):
        query = Query("nemo", "cte-arm", 16,
                      overrides=(("serial_scale", 1.5),))
        with CapacityService(_FAST) as svc:
            warm1 = json.dumps(svc.handle(query.to_request())[1],
                               sort_keys=True)
            warm2 = json.dumps(svc.handle(query.to_request())[1],
                               sort_keys=True)
            # memory pressure: evict every warm tape, then re-price cold
            set_tape_budget(1)
            set_tape_budget(None)
            assert tape_cache_stats()["entries"] <= 1
            cold = json.dumps(svc.handle(query.to_request())[1],
                              sort_keys=True)
        assert warm1 == warm2 == cold

    def test_service_config_applies_budget(self):
        config = ServiceConfig(quota_rate=1e6, quota_burst=1e6,
                               tape_budget_bytes=123456)
        with CapacityService(config):
            assert tape_cache_stats()["budget_bytes"] == 123456


# -- golden responses ---------------------------------------------------------


def _golden_matrix() -> dict[str, Query]:
    return {
        "stream@cte-arm/1": Query("stream", "cte-arm", 1),
        "hpcg@cte-arm/8": Query("hpcg", "cte-arm", 8),
        "linpack@mn4/16": Query("linpack", "mn4", 16),
        "nemo@cte-arm/16+comm1.25": Query(
            "nemo", "cte-arm", 16, overrides=(("comm_scale", 1.25),)),
        "gromacs@cte-arm/8+bw0.5": Query(
            "gromacs", "cte-arm", 8, overrides=(("bandwidth_scale", 0.5),)),
        "wrf@mn4/4": Query("wrf", "mn4", 4),
        "alya@cte-arm/12x2steps": Query("alya", "cte-arm", 12, steps=2),
    }


def test_golden_service_responses(request):
    """Serialization drift in the service response shape is caught the
    same way the PR-3 trace snapshots catch DES drift."""
    with CapacityService(_FAST) as svc:
        got_dict = {}
        for key, query in sorted(_golden_matrix().items()):
            status, body = svc.handle(query.to_request())
            assert status == 200, (key, body)
            got_dict[key] = body
    got = json.dumps(got_dict, indent=2, sort_keys=True) + "\n"
    path = GOLDEN_DIR / "service_responses.json"
    if request.config.getoption("--update-golden"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(got)
        pytest.skip(f"golden snapshot {path.name} rewritten")
    assert path.exists(), (
        f"missing golden snapshot {path}; run with --update-golden")
    assert got == path.read_text(), (
        "service responses drifted from service_responses.json; if "
        "intentional, regenerate with --update-golden and review the diff")


# -- HTTP front end -----------------------------------------------------------


class TestHTTP:
    @pytest.fixture()
    def server(self):
        from repro.service import ServiceServer

        config = ServiceConfig(quota_rate=1e6, quota_burst=1e6,
                               window_s=0.001)
        with ServiceServer(CapacityService(config)) as srv:
            yield srv

    def _post(self, server, payload, headers=None):
        import urllib.error
        import urllib.request

        request = urllib.request.Request(
            server.url + "/v1/price",
            data=json.dumps(payload).encode()
            if not isinstance(payload, bytes) else payload,
            headers={"Content-Type": "application/json", **(headers or {})},
            method="POST")
        try:
            with urllib.request.urlopen(request, timeout=10) as resp:
                return resp.status, json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())

    def test_price_matches_direct_run_batch(self, server):
        query = Query("hpcg", "cte-arm", 8)
        status, body = self._post(server, query.to_request())
        assert status == 200
        direct = BatchAnalyticBackend().run_batch(
            [server.service.job_for(query)])[0]
        assert body == encode_result(query, direct)

    def test_health_stats_and_unknown_path(self, server):
        import urllib.request

        with urllib.request.urlopen(server.url + "/v1/health",
                                    timeout=10) as resp:
            assert json.loads(resp.read()) == {"status": "ok"}
        with urllib.request.urlopen(server.url + "/v1/stats",
                                    timeout=10) as resp:
            stats = json.loads(resp.read())
        assert stats["queries"] >= 0 and "tape_cache" in stats
        status, _ = self._post(server, {"workload": "stream"})
        assert status == 200
        import urllib.error
        try:
            urllib.request.urlopen(server.url + "/nope", timeout=10)
        except urllib.error.HTTPError as exc:
            assert exc.code == 404

    def test_bad_json_is_400(self, server):
        status, body = self._post(server, b"{not json")
        assert status == 400
        assert "JSON" in body["error"]

    def test_client_header_feeds_quota(self):
        from repro.service import ServiceServer

        config = ServiceConfig(quota_rate=0.001, quota_burst=1.0,
                               window_s=0.0)
        with ServiceServer(CapacityService(config)) as srv:
            ok = self._post(srv, {"workload": "stream"},
                            headers={"X-Client-Id": "h1"})
            assert ok[0] == 200
            status, body = self._post(srv, {"workload": "stream"},
                                      headers={"X-Client-Id": "h1"})
            assert status == 429
            assert body["retry_after_seconds"] > 0
            # a different client has its own bucket
            assert self._post(srv, {"workload": "stream"},
                              headers={"X-Client-Id": "h2"})[0] == 200

    def test_stats_expose_tape_cache_counters(self, server):
        """/v1/stats surfaces TapeCache hit/miss/eviction counters so
        tuner-sized workloads can be observed when served (ISSUE 10)."""
        import urllib.request
        from repro.ir.batch import clear_caches

        def cache_stats():
            with urllib.request.urlopen(server.url + "/v1/stats",
                                        timeout=10) as resp:
                return json.loads(resp.read())["tape_cache"]

        clear_caches()
        before = cache_stats()
        for key in ("hits", "misses", "evictions", "entries",
                    "resident_bytes"):
            assert key in before
        # first pricing of a workload compiles its tape (a miss); the
        # repeat is served from the warm tape (a hit)
        assert self._post(server, {"workload": "stream",
                                   "n_nodes": 3})[0] == 200
        mid = cache_stats()
        assert mid["misses"] > before["misses"]
        assert self._post(server, {"workload": "stream",
                                   "n_nodes": 3})[0] == 200
        after = cache_stats()
        assert after["hits"] > mid["hits"]
        assert after["entries"] >= 1
