"""Simulated MPI: mapping, point-to-point, every collective, world runs."""

import numpy as np
import pytest

from repro.simmpi import RankMapping, ReduceOp, VirtualPayload, World, payload_size
from repro.util.errors import ConfigurationError, DeadlockError


class TestPayload:
    def test_numpy_size(self):
        assert payload_size(np.zeros(10)) == 80

    def test_virtual_payload(self):
        assert payload_size(VirtualPayload(12345)) == 12345

    def test_override_wins(self):
        assert payload_size(np.zeros(10), override=7) == 7

    def test_scalar_and_none(self):
        assert payload_size(3.14) == 8
        assert payload_size(None) == 0

    def test_bytes(self):
        assert payload_size(b"abcd") == 4

    def test_negative_virtual_rejected(self):
        with pytest.raises(ConfigurationError):
            VirtualPayload(-1)


class TestMapping:
    def test_rank_to_node(self, arm_small):
        m = RankMapping(arm_small, n_nodes=3, ranks_per_node=4)
        assert m.n_ranks == 12
        assert m.node_of(0) == 0 and m.node_of(4) == 1 and m.node_of(11) == 2
        assert m.local_rank(5) == 1

    def test_one_rank_per_cmg(self, arm_small):
        m = RankMapping(arm_small, n_nodes=1, ranks_per_node=4,
                        threads_per_rank=12)
        assert [m.domain_of(r) for r in range(4)] == [0, 1, 2, 3]

    def test_mpi_only_rank_bandwidth(self, arm_small):
        m = RankMapping(arm_small, n_nodes=1, ranks_per_node=48)
        # 12 ranks share one CMG's sustainable bandwidth.
        per = m.rank_memory_bandwidth(0)
        assert per == pytest.approx(215.65e9 / 12, rel=0.01)

    def test_hybrid_rank_bandwidth(self, arm_small):
        m = RankMapping(arm_small, n_nodes=1, ranks_per_node=4,
                        threads_per_rank=12)
        assert m.rank_memory_bandwidth(0) == pytest.approx(215.65e9, rel=0.01)

    def test_compute_rate_scales_with_threads(self, arm_small):
        m = RankMapping(arm_small, n_nodes=1, ranks_per_node=4,
                        threads_per_rank=12)
        assert m.rank_compute_rate(0, 2e9) == pytest.approx(24e9)

    def test_oversubscription_rejected(self, arm_small):
        with pytest.raises(ConfigurationError):
            RankMapping(arm_small, n_nodes=1, ranks_per_node=8,
                        threads_per_rank=8)

    def test_placement_within_domain(self, arm_small):
        m = RankMapping(arm_small, n_nodes=1, ranks_per_node=4,
                        threads_per_rank=12)
        p = m.placement_of(2)
        assert set(p.cores) == set(range(24, 36))


class TestPointToPoint:
    def test_send_recv_payload(self, small_world):
        def program(comm):
            if comm.rank == 0:
                yield from comm.send(1, np.arange(4.0), tag=9)
                return None
            if comm.rank == 1:
                data = yield from comm.recv(0, tag=9)
                return data
            return None

        res = small_world.run(program)
        assert np.array_equal(res.rank_results[1], np.arange(4.0))

    def test_sendrecv_exchange(self, small_world):
        def program(comm):
            partner = comm.rank ^ 1
            got = yield from comm.sendrecv(partner, comm.rank * 10)
            return got

        res = small_world.run(program)
        assert res.rank_results[0] == 10 and res.rank_results[1] == 0

    def test_self_message_rejected(self, small_world):
        def program(comm):
            if comm.rank == 0:
                yield from comm.send(0, b"x")

        with pytest.raises(Exception):
            small_world.run(program)

    def test_mismatched_recv_deadlocks(self, small_world):
        def program(comm):
            if comm.rank == 0:
                yield from comm.recv(1)

        with pytest.raises(DeadlockError):
            small_world.run(program)

    def test_virtual_time_advances_with_size(self, arm_small):
        def program(comm, size):
            if comm.rank == 0:
                yield from comm.send(1, None, size=size)
            elif comm.rank == 1:
                yield from comm.recv(0)

        times = []
        for size in (1024, 1024 * 1024):
            world = World(RankMapping(arm_small, n_nodes=2, ranks_per_node=1))
            times.append(world.run(program, size).elapsed)
        assert times[0] < times[1]

    def test_intranode_faster_than_internode(self, arm_small):
        def program(comm):
            if comm.rank == 0:
                yield from comm.send(1, None, size=64 * 1024)
            elif comm.rank == 1:
                yield from comm.recv(0)

        w_intra = World(RankMapping(arm_small, n_nodes=1, ranks_per_node=2))
        w_inter = World(RankMapping(arm_small, n_nodes=2, ranks_per_node=1))
        assert w_intra.run(program).elapsed < w_inter.run(program).elapsed


class TestCollectives:
    @pytest.mark.parametrize("n_nodes,rpn", [(4, 2), (3, 3), (1, 7)])
    def test_allreduce_sum(self, arm_small, n_nodes, rpn):
        """Power-of-two and non-power-of-two rank counts."""
        world = World(RankMapping(arm_small, n_nodes=n_nodes, ranks_per_node=rpn))

        def program(comm):
            total = yield from comm.allreduce(np.array([float(comm.rank)]))
            return float(total[0])

        res = world.run(program)
        p = n_nodes * rpn
        expected = p * (p - 1) / 2
        assert all(v == expected for v in res.rank_results)

    def test_allreduce_max_min(self, small_world):
        def program(comm):
            mx = yield from comm.allreduce(np.array([comm.rank]), op=ReduceOp.MAX)
            mn = yield from comm.allreduce(np.array([comm.rank]), op=ReduceOp.MIN)
            return (int(mx[0]), int(mn[0]))

        res = small_world.run(program)
        assert all(v == (7, 0) for v in res.rank_results)

    @pytest.mark.parametrize("root", [0, 3, 5])
    def test_bcast_from_any_root(self, small_world, root):
        def program(comm):
            payload = {"data": 99} if comm.rank == root else None
            got = yield from comm.bcast(payload, root=root)
            return got["data"]

        res = small_world.run(program)
        assert all(v == 99 for v in res.rank_results)

    @pytest.mark.parametrize("root", [0, 2])
    def test_reduce_only_root_gets_result(self, small_world, root):
        def program(comm):
            out = yield from comm.reduce(np.array([1.0]), root=root)
            return None if out is None else float(out[0])

        res = small_world.run(program)
        for rank, v in enumerate(res.rank_results):
            assert (v == 8.0) if rank == root else (v is None)

    def test_gather_ordered(self, small_world):
        def program(comm):
            return (yield from comm.gather(f"r{comm.rank}", root=0))

        res = small_world.run(program)
        assert res.rank_results[0] == [f"r{i}" for i in range(8)]
        assert res.rank_results[1] is None

    def test_allgather_all_ranks(self, small_world):
        def program(comm):
            return (yield from comm.allgather(comm.rank * 2))

        res = small_world.run(program)
        assert all(v == [0, 2, 4, 6, 8, 10, 12, 14] for v in res.rank_results)

    def test_alltoall_permutation(self, small_world):
        def program(comm):
            out = yield from comm.alltoall(
                [(comm.rank, d) for d in range(comm.size)]
            )
            return out

        res = small_world.run(program)
        for rank, received in enumerate(res.rank_results):
            assert received == [(src, rank) for src in range(8)]

    def test_scatter(self, small_world):
        def program(comm):
            blocks = list(range(100, 108)) if comm.rank == 3 else None
            mine = yield from comm.scatter(blocks, root=3)
            return mine

        res = small_world.run(program)
        assert res.rank_results == [100 + i for i in range(8)]

    def test_barrier_synchronizes(self, arm_small):
        world = World(RankMapping(arm_small, n_nodes=2, ranks_per_node=2))

        def program(comm):
            if comm.rank == 0:
                yield from comm.compute(1.0)
            yield from comm.barrier()
            return comm.now

        res = world.run(program)
        assert all(t >= 1.0 for t in res.rank_results)

    def test_single_rank_collectives_trivial(self, arm_small):
        world = World(RankMapping(arm_small, n_nodes=1, ranks_per_node=1))

        def program(comm):
            a = yield from comm.allreduce(np.array([5.0]))
            b = yield from comm.bcast("x")
            c = yield from comm.allgather(1)
            yield from comm.barrier()
            return (float(a[0]), b, c)

        res = world.run(program)
        assert res.rank_results[0] == (5.0, "x", [1])


class TestComputeAndTrace:
    def test_compute_roofline(self, small_world):
        def program(comm):
            yield from comm.compute(flops=2e9, flops_per_core=2e9)
            return comm.now

        res = small_world.run(program)
        assert all(t == pytest.approx(1.0) for t in res.rank_results)

    def test_compute_memory_bound(self, arm_small):
        world = World(RankMapping(arm_small, n_nodes=1, ranks_per_node=4,
                                  threads_per_rank=12))

        def program(comm):
            bw = world.mapping.rank_memory_bandwidth(comm.rank)
            yield from comm.compute(bytes_moved=bw)  # exactly one second
            return comm.now

        res = world.run(program)
        assert all(t == pytest.approx(1.0) for t in res.rank_results)

    def test_compute_needs_rate_for_flops(self, small_world):
        def program(comm):
            yield from comm.compute(flops=1e9)

        with pytest.raises(ConfigurationError):
            small_world.run(program)

    def test_phase_times_recorded(self, small_world):
        def program(comm):
            comm.set_phase("assembly")
            yield from comm.compute(0.5)
            comm.set_phase("solver")
            yield from comm.compute(0.25)

        res = small_world.run(program)
        assert res.phase_time("assembly") == pytest.approx(0.5)
        assert res.phase_time("solver") == pytest.approx(0.25)
        assert res.phase_time("solver", reduction="sum") == pytest.approx(2.0)

    def test_world_rejects_undersized_network(self, arm_small):
        from repro.network.model import network_for

        net = network_for(arm_small, n_nodes=12)
        mapping = RankMapping(arm_small, n_nodes=12, ranks_per_node=1)
        World(mapping, network=net)  # exact fit is fine
        with pytest.raises(ConfigurationError):
            World(RankMapping(cte_arm_13(), n_nodes=13, ranks_per_node=1),
                  network=net)


def cte_arm_13():
    from repro.machine import cte_arm

    return cte_arm(13)
